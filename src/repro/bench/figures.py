"""Table rendering for the benchmark harness.

Each benchmark prints the rows/series of one paper artefact next to the
paper-reported values, so ``pytest benchmarks/ --benchmark-only`` output
doubles as the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = ["PAPER_FIG4", "render_table", "print_table"]

#: Figure 4 of the paper: mean execution time (seconds) of the ROOT
#: analysis job reading 100 % of the events.
PAPER_FIG4: Dict[Tuple[str, str], float] = {
    ("davix", "lan"): 97.22,
    ("xrootd", "lan"): 97.91,
    ("davix", "geant"): 107.88,
    ("xrootd", "geant"): 107.80,
    ("davix", "wan"): 203.49,
    ("xrootd", "wan"): 173.20,
}


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    if note:
        lines.append(note)
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: Optional[str] = None,
) -> None:
    """Render and print an aligned ASCII table."""
    print("\n" + render_table(title, headers, rows, note) + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)
