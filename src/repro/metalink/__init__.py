"""Metalink (RFC 5854) support: model, parser, writer."""

from repro.metalink.model import (
    METALINK_MEDIA_TYPE,
    METALINK_NS,
    Metalink,
    MetalinkFile,
    MetalinkUrl,
)
from repro.metalink.parser import parse_metalink
from repro.metalink.writer import write_metalink

__all__ = [
    "METALINK_MEDIA_TYPE",
    "METALINK_NS",
    "Metalink",
    "MetalinkFile",
    "MetalinkUrl",
    "parse_metalink",
    "write_metalink",
]
