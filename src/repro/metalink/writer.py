"""Serialise Metalink documents to RFC 5854 XML."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.metalink.model import METALINK_NS, Metalink

__all__ = ["write_metalink"]


def write_metalink(doc: Metalink) -> bytes:
    """Render ``doc`` as a metalink4 XML document (UTF-8 bytes)."""
    ET.register_namespace("", METALINK_NS)
    root = ET.Element(f"{{{METALINK_NS}}}metalink")
    generator = ET.SubElement(root, f"{{{METALINK_NS}}}generator")
    generator.text = doc.generator
    for entry in doc.files:
        file_el = ET.SubElement(
            root, f"{{{METALINK_NS}}}file", {"name": entry.name}
        )
        if entry.size is not None:
            size_el = ET.SubElement(file_el, f"{{{METALINK_NS}}}size")
            size_el.text = str(entry.size)
        for algo, digest in sorted(entry.hashes.items()):
            hash_el = ET.SubElement(
                file_el, f"{{{METALINK_NS}}}hash", {"type": algo}
            )
            hash_el.text = digest
        for url in entry.urls:
            attrs = {"priority": str(url.priority)}
            if url.location:
                attrs["location"] = url.location
            url_el = ET.SubElement(
                file_el, f"{{{METALINK_NS}}}url", attrs
            )
            url_el.text = url.url
    return ET.tostring(root, encoding="utf-8", xml_declaration=True)
