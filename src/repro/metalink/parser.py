"""Parse RFC 5854 metalink4 XML documents."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import MetalinkError
from repro.metalink.model import (
    METALINK_NS,
    Metalink,
    MetalinkFile,
    MetalinkUrl,
)

__all__ = ["parse_metalink"]


def _tag(name: str) -> str:
    return f"{{{METALINK_NS}}}{name}"


def parse_metalink(data: bytes) -> Metalink:
    """Parse a metalink4 document.

    Raises :class:`MetalinkError` on malformed XML or missing mandatory
    structure (root element, file names, url content).
    """
    try:
        root = ET.fromstring(data)
    except ET.ParseError as exc:
        raise MetalinkError(f"invalid metalink XML: {exc}") from exc
    if root.tag != _tag("metalink"):
        raise MetalinkError(f"unexpected root element {root.tag!r}")

    doc = Metalink(files=[])
    generator = root.find(_tag("generator"))
    if generator is not None and generator.text:
        doc.generator = generator.text.strip()

    for file_el in root.findall(_tag("file")):
        name = file_el.get("name", "").strip()
        if not name:
            raise MetalinkError("file element without name attribute")
        entry = MetalinkFile(name=name)

        size_el = file_el.find(_tag("size"))
        if size_el is not None and size_el.text:
            try:
                entry.size = int(size_el.text.strip())
            except ValueError:
                raise MetalinkError(
                    f"non-numeric size {size_el.text!r}"
                ) from None
            if entry.size < 0:
                raise MetalinkError("negative size")

        for hash_el in file_el.findall(_tag("hash")):
            algo = hash_el.get("type", "").strip().lower()
            if algo and hash_el.text:
                entry.hashes[algo] = hash_el.text.strip()

        for url_el in file_el.findall(_tag("url")):
            if not url_el.text or not url_el.text.strip():
                raise MetalinkError("url element without content")
            try:
                priority = int(url_el.get("priority", "1"))
            except ValueError:
                raise MetalinkError(
                    f"bad priority {url_el.get('priority')!r}"
                ) from None
            entry.urls.append(
                MetalinkUrl(
                    url=url_el.text.strip(),
                    priority=priority,
                    location=url_el.get("location"),
                )
            )
        doc.files.append(entry)
    return doc
