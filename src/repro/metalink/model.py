"""Metalink document model (RFC 5854 subset).

A Metalink describes one online resource: its name, size, checksums and
an ordered list of replica URLs. davix uses it for transparent replica
fail-over and for multi-stream downloads (paper Section 2.4). WLCG
conventions use ``adler32`` checksums, which we follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MetalinkError

__all__ = ["MetalinkUrl", "MetalinkFile", "Metalink"]

METALINK_NS = "urn:ietf:params:xml:ns:metalink"
METALINK_MEDIA_TYPE = "application/metalink4+xml"


@dataclass(frozen=True)
class MetalinkUrl:
    """One replica location.

    Lower ``priority`` value = preferred replica (RFC 5854 §4.2.17).
    """

    url: str
    priority: int = 1
    location: Optional[str] = None  # ISO3166 country hint

    def __post_init__(self):
        if not self.url:
            raise MetalinkError("replica URL must not be empty")
        if not 1 <= self.priority <= 999999:
            raise MetalinkError(
                f"priority {self.priority} outside [1, 999999]"
            )


@dataclass
class MetalinkFile:
    """One described resource and its replicas."""

    name: str
    size: Optional[int] = None
    hashes: Dict[str, str] = field(default_factory=dict)
    urls: List[MetalinkUrl] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise MetalinkError("file name must not be empty")
        if self.size is not None and self.size < 0:
            raise MetalinkError("size must be >= 0")

    def ordered_urls(self) -> List[MetalinkUrl]:
        """Replicas by ascending priority, stable for equal priorities."""
        return sorted(self.urls, key=lambda u: u.priority)

    def checksum(self, algo: str) -> Optional[str]:
        return self.hashes.get(algo.lower())


@dataclass
class Metalink:
    """A whole Metalink document (one or more files)."""

    files: List[MetalinkFile] = field(default_factory=list)
    generator: str = "repro-davix/1.0"

    def single(self) -> MetalinkFile:
        """The only file entry (the common davix case)."""
        if len(self.files) != 1:
            raise MetalinkError(
                f"expected exactly one file entry, got {len(self.files)}"
            )
        return self.files[0]
