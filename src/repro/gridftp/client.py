"""GridFTP-like client: parallel striped downloads.

``retrieve`` opens the control channel, negotiates N passive data
ports, connects one TCP stream to each, and reassembles the mode-E
blocks arriving out of order across the streams.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.concurrency import Close, Connect, Join, Recv, Send, Spawn
from repro.errors import ConnectionClosed, HttpProtocolError, RequestError
from repro.gridftp import protocol as gp
from repro.gridftp.server import _read_line

__all__ = ["GridFtpClient"]


class GridFtpClient:
    """One control session to a GridFTP-like server."""

    def __init__(self, channel, endpoint: Tuple[str, int]):
        self.channel = channel
        self.endpoint = endpoint
        self._buffer = bytearray()
        self.bytes_received = 0

    @classmethod
    def connect(cls, endpoint: Tuple[str, int], tcp_options=None):
        """Effect sub-op: open the control channel."""
        channel = yield Connect(endpoint, tcp_options)
        client = cls(channel, endpoint)
        code, message = yield from client._reply()
        if code != 220:
            raise RequestError(f"gridftp greeting failed: {message}")
        return client

    def _reply(self):
        line, self._buffer = yield from _read_line(
            self.channel, self._buffer
        )
        if line is None:
            raise ConnectionClosed("gridftp control channel closed")
        return gp.parse_reply(line)

    def _command(self, line: str, expect: int):
        yield Send(self.channel, line.encode("utf-8") + b"\r\n")
        code, message = yield from self._reply()
        if code != expect:
            raise RequestError(
                f"gridftp {line.split()[0]} failed: {code} {message}"
            )
        return message

    # -- operations ---------------------------------------------------------

    def size(self, path: str):
        """Effect sub-op: remote file size."""
        message = yield from self._command(f"SIZE {path}", expect=213)
        return int(message)

    def retrieve(self, path: str, streams: int = 4, tcp_options=None):
        """Effect sub-op: striped download -> the file's bytes."""
        size = yield from self.size(path)
        message = yield from self._command(f"PASV {streams}", expect=227)
        ports = [int(p) for p in message.rsplit(" ", 1)[-1].split(",")]

        yield Send(self.channel, f"RETR {path}".encode() + b"\r\n")
        channels = []
        for port in ports:
            data_channel = yield Connect(
                (self.endpoint[0], port), tcp_options
            )
            channels.append(data_channel)
        code, message = yield from self._reply()
        if code != 150:
            raise RequestError(f"gridftp RETR refused: {code} {message}")

        assembly = bytearray(size)
        received = {"bytes": 0}

        def drain(data_channel):
            reader = gp.BlockReader()
            while True:
                block = reader.next_block()
                if block is None:
                    data = yield Recv(data_channel)
                    if not data:
                        return
                    reader.feed(data)
                    continue
                if block.eof:
                    yield Close(data_channel)
                    return
                end = block.offset + len(block.payload)
                if end > size:
                    raise HttpProtocolError(
                        f"block beyond EOF ({end} > {size})"
                    )
                assembly[block.offset : end] = block.payload
                received["bytes"] += len(block.payload)

        tasks = []
        for data_channel in channels:
            task = yield Spawn(drain(data_channel), name="gridftp-drain")
            tasks.append(task)
        for task in tasks:
            yield Join(task)

        code, message = yield from self._reply()
        if code != 226:
            raise RequestError(
                f"gridftp transfer incomplete: {code} {message}"
            )
        if received["bytes"] != size:
            raise RequestError(
                f"gridftp short transfer: {received['bytes']} of {size}"
            )
        self.bytes_received += size
        return bytes(assembly)

    def quit(self):
        """Effect sub-op: close the control session."""
        try:
            yield from self._command("QUIT", expect=221)
        except (RequestError, ConnectionClosed):
            pass
        yield Close(self.channel)
