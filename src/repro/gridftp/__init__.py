"""GridFTP-like comparator: control channel + striped data streams.

One of the HPC protocols the paper's Section 2.2 surveys ("separated
control and data channels ... multiple data streams"). Its parallel
streams aggregate per-connection TCP windows — useful context for the
Figure-4 window-limit mechanism.
"""

from repro.gridftp.client import GridFtpClient
from repro.gridftp.protocol import BlockReader, DataBlock
from repro.gridftp.server import GridFtpServer, serve_gridftp

__all__ = [
    "GridFtpClient",
    "BlockReader",
    "DataBlock",
    "GridFtpServer",
    "serve_gridftp",
]
