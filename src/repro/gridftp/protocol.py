"""GridFTP-like wire formats: FTP-style control lines, mode-E blocks.

The paper lists GridFTP among the HPC data protocols: "The GridFTPv2
protocol has separated control and data channels and supports multiple
data streams from different data sources." This module provides the two
wire formats that design needs:

* a line-based **control channel** (``SIZE``, ``PASV``, ``RETR``,
  ``QUIT`` with ``NNN message`` replies);
* **mode-E data blocks** — ``flags u8 | offset u64 | length u32 |
  payload`` — which carry out-of-order file extents over any number of
  parallel data channels (the feature that beats per-connection TCP
  window limits).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HttpProtocolError

__all__ = [
    "EOF_FLAG",
    "DataBlock",
    "BlockReader",
    "encode_block",
    "encode_eof",
    "parse_command",
    "format_reply",
    "parse_reply",
]

BLOCK_HEADER = struct.Struct(">BQI")

#: Mode-E end-of-data flag: the sender is done with this channel.
EOF_FLAG = 0x40

#: Block payload cap (GridFTP commonly uses 64 KiB - 1 MiB blocks).
MAX_BLOCK = 1 << 20

CRLF = b"\r\n"


@dataclass(frozen=True)
class DataBlock:
    """One mode-E extent: ``length`` bytes of the file at ``offset``."""

    flags: int
    offset: int
    payload: bytes

    @property
    def eof(self) -> bool:
        return bool(self.flags & EOF_FLAG)


def encode_block(offset: int, payload: bytes, flags: int = 0) -> bytes:
    """Serialise one mode-E data block."""
    if len(payload) > MAX_BLOCK:
        raise HttpProtocolError(f"block too large: {len(payload)}")
    return BLOCK_HEADER.pack(flags, offset, len(payload)) + payload


def encode_eof() -> bytes:
    """The terminating block of one data channel."""
    return BLOCK_HEADER.pack(EOF_FLAG, 0, 0)


class BlockReader:
    """Incremental mode-E deframer."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_block(self) -> Optional[DataBlock]:
        """Pop the next complete block, or None."""
        if len(self._buffer) < BLOCK_HEADER.size:
            return None
        flags, offset, length = BLOCK_HEADER.unpack_from(self._buffer)
        if length > MAX_BLOCK:
            raise HttpProtocolError(f"oversized block ({length} B)")
        total = BLOCK_HEADER.size + length
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[BLOCK_HEADER.size : total])
        del self._buffer[:total]
        return DataBlock(flags, offset, payload)


# -- control channel -----------------------------------------------------------


def parse_command(line: bytes) -> Tuple[str, List[str]]:
    """Split a control line into (VERB, args)."""
    parts = line.decode("utf-8", "replace").strip().split()
    if not parts:
        raise HttpProtocolError("empty control command")
    return parts[0].upper(), parts[1:]


def format_reply(code: int, message: str) -> bytes:
    """``NNN message\\r\\n`` control reply."""
    return f"{code} {message}".encode("utf-8") + CRLF


def parse_reply(line: bytes) -> Tuple[int, str]:
    """Parse a control reply into (code, message)."""
    text = line.decode("utf-8", "replace").strip()
    code_text, _, message = text.partition(" ")
    try:
        code = int(code_text)
    except ValueError:
        raise HttpProtocolError(f"bad control reply {text!r}") from None
    return code, message
