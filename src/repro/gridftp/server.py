"""GridFTP-like server: control channel + striped data channels.

``RETR`` stripes the file round-robin over however many data channels
the preceding ``PASV`` opened: each channel carries mode-E blocks for
its share of the extents, so the aggregate throughput is the sum of the
per-connection TCP windows — GridFTP's answer to long fat pipes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.concurrency import Accept, Close, Join, Recv, Send, Sleep, Spawn
from repro.concurrency.runtime import Runtime
from repro.errors import (
    ConnectionClosed,
    HttpProtocolError,
    NetworkError,
    TransferTimeout,
)
from repro.gridftp import protocol as gp
from repro.server.objectstore import ObjectStore, StoreError

__all__ = ["GridFtpServer", "serve_gridftp"]

#: Base port for passive data listeners.
DATA_PORT_BASE = 20_000


class GridFtpServer:
    """Striped file server over an ObjectStore."""

    def __init__(
        self,
        store: ObjectStore,
        runtime: Runtime,
        block_size: int = 262_144,
        service_overhead: float = 0.0005,
        disk_bandwidth: float = 400e6,
    ):
        self.store = store
        self.runtime = runtime
        self.block_size = block_size
        self.service_overhead = service_overhead
        self.disk_bandwidth = disk_bandwidth
        self._next_data_port = DATA_PORT_BASE
        self.transfers = 0

    def serve_forever(self, listener):
        """Effect op: control-channel accept loop."""
        while True:
            try:
                channel = yield Accept(listener)
            except (NetworkError, ConnectionClosed):
                return
            yield Spawn(
                self.handle_control(channel), name="gridftp-control"
            )

    def handle_control(self, channel):
        """Effect op: one control session."""
        yield Send(channel, gp.format_reply(220, "repro-gridftp ready"))
        buffer = bytearray()
        data_listeners: List = []
        try:
            while True:
                line, buffer = yield from _read_line(channel, buffer)
                if line is None:
                    break
                verb, args = gp.parse_command(line)
                if verb == "QUIT":
                    yield Send(channel, gp.format_reply(221, "goodbye"))
                    break
                if verb == "SIZE":
                    yield from self._cmd_size(channel, args)
                elif verb == "PASV":
                    data_listeners = yield from self._cmd_pasv(
                        channel, args
                    )
                elif verb == "RETR":
                    yield from self._cmd_retr(
                        channel, args, data_listeners
                    )
                    data_listeners = []
                else:
                    yield Send(
                        channel,
                        gp.format_reply(500, f"unknown command {verb}"),
                    )
        except (ConnectionClosed, HttpProtocolError, TransferTimeout):
            pass
        for listener in data_listeners:
            listener.close()
        yield Close(channel)

    # -- commands -----------------------------------------------------------

    def _cmd_size(self, channel, args):
        if not args:
            yield Send(channel, gp.format_reply(501, "SIZE needs a path"))
            return
        try:
            size, _mtime, is_dir = self.store.stat(args[0])
        except StoreError:
            yield Send(channel, gp.format_reply(550, "no such file"))
            return
        if is_dir:
            yield Send(channel, gp.format_reply(550, "is a directory"))
            return
        yield Send(channel, gp.format_reply(213, str(size)))

    def _cmd_pasv(self, channel, args):
        streams = int(args[0]) if args else 1
        if not 1 <= streams <= 32:
            yield Send(
                channel, gp.format_reply(501, "1..32 streams supported")
            )
            return []
        listeners = []
        ports = []
        for _ in range(streams):
            port = self._next_data_port
            self._next_data_port += 1
            listeners.append(self.runtime.listen(port))
            ports.append(port)
        yield Send(
            channel,
            gp.format_reply(
                227, "entering passive mode " + ",".join(map(str, ports))
            ),
        )
        return listeners

    def _cmd_retr(self, channel, args, data_listeners):
        if not args:
            yield Send(channel, gp.format_reply(501, "RETR needs a path"))
            return
        if not data_listeners:
            yield Send(channel, gp.format_reply(425, "use PASV first"))
            return
        try:
            obj = self.store.get(args[0])
        except StoreError:
            yield Send(channel, gp.format_reply(550, "no such file"))
            return
        yield Send(
            channel,
            gp.format_reply(150, f"opening {len(data_listeners)} streams"),
        )
        self.transfers += 1

        # Accept every data connection, then stripe blocks round-robin.
        data_channels = []
        for listener in data_listeners:
            data_channel = yield Accept(listener)
            data_channels.append(data_channel)
            listener.close()

        extents = [
            (offset, min(self.block_size, obj.size - offset))
            for offset in range(0, obj.size, self.block_size)
        ]
        tasks = []
        for lane, data_channel in enumerate(data_channels):
            share = extents[lane :: len(data_channels)]
            task = yield Spawn(
                self._send_stripe(data_channel, obj, share),
                name=f"gridftp-stripe-{lane}",
            )
            tasks.append(task)
        for task in tasks:
            yield Join(task)
        yield Send(channel, gp.format_reply(226, "transfer complete"))

    def _send_stripe(self, channel, obj, extents):
        """Effect op: one data channel's share of the file."""
        try:
            for offset, length in extents:
                data = obj.content.read(offset, length)
                service = (
                    self.service_overhead
                    + length / self.disk_bandwidth
                )
                yield Sleep(service)
                yield Send(channel, gp.encode_block(offset, data))
            yield Send(channel, gp.encode_eof())
        except ConnectionClosed:
            pass
        yield Close(channel)


def _read_line(channel, buffer: bytearray):
    """Effect sub-op: one CRLF line; (None, buffer) on clean EOF."""
    while b"\r\n" not in buffer:
        data = yield Recv(channel)
        if not data:
            return None, buffer
        buffer.extend(data)
    line, _, rest = bytes(buffer).partition(b"\r\n")
    return line, bytearray(rest)


def serve_gridftp(
    runtime: Runtime,
    server: GridFtpServer,
    port: int = 2811,
    host: Optional[str] = None,
):
    """Open the control listener and spawn the accept loop."""
    listener = runtime.listen(port, host)
    runtime.spawn(server.serve_forever(listener), name="gridftp-server")
    return listener
