"""Wide structured events: one record per request, per side.

Metrics aggregate and spans nest; a *wide event* is the third leg —
one flat record per request carrying everything known about it (IDs,
phases, sizes, outcome), the row HammerCloud-style offline analysis
mines. The client engine emits one per request, the storage server one
per served request; the shared trace ID joins the two sides.

The JSONL rendering is a contract: one object per line in emit order,
keys sorted, integral floats emitted as ints — deterministic on the
simulated clock, so two seeded runs diff byte-for-byte.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

__all__ = ["EventLog", "event_to_json", "events_to_json_lines", "parse_json_lines"]


def _norm(value):
    """Normalise one field for stable JSON (integral floats -> ints)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, dict):
        return {key: _norm(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_norm(inner) for inner in value]
    return value


def event_to_json(event: Dict[str, object]) -> str:
    """One event as its canonical JSON line."""
    return json.dumps(_norm(dict(event)), sort_keys=True)


def events_to_json_lines(events: Iterable[Dict[str, object]]) -> str:
    """Events as JSONL, one canonical line each, in the given order."""
    return "\n".join(event_to_json(event) for event in events)


def parse_json_lines(text: str) -> List[Dict[str, object]]:
    """Inverse of :func:`events_to_json_lines` (blank lines skipped)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


class EventLog:
    """Bounded ring of wide events (oldest dropped first).

    ``sink`` is an optional callable invoked with each record as it is
    emitted (see :class:`~repro.obs.collector.TelemetrySink`).
    """

    def __init__(self, capacity: int = 100_000, sink=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sink = sink
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.total_events = 0

    def emit(self, kind: str, **fields) -> Dict[str, object]:
        """Record one event; returns the stored record."""
        record: Dict[str, object] = {"kind": kind}
        record.update(fields)
        self._events.append(record)
        self.total_events += 1
        if self.sink is not None:
            self.sink(record)
        return record

    def records(self) -> List[Dict[str, object]]:
        """Retained events in emit order (copies of the refs, not deep)."""
        return list(self._events)

    def by_kind(self, kind: str) -> List[Dict[str, object]]:
        return [event for event in self._events if event.get("kind") == kind]

    def last(self) -> Optional[Dict[str, object]]:
        return self._events[-1] if self._events else None

    def to_json_lines(self) -> str:
        """The retained events as canonical JSONL."""
        return events_to_json_lines(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
