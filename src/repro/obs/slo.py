"""Per-origin SLO and error-budget tracking.

HammerCloud's verdict on a site is not a mean — it is "did the site
meet its objectives over the run". An :class:`SloPolicy` states the
objectives (availability, and a latency threshold a given fraction of
requests must beat); an :class:`SloTracker` folds every request's
``(origin, duration, ok)`` outcome into per-origin tallies and renders
verdicts with the remaining error budget.

Error budget: with an availability objective of 99 %, 1 % of requests
may fail — the *budget*. ``budget_remaining`` is the unspent fraction
of it (1.0 = untouched, 0.0 = exhausted, negative = overspent), the
number operators page on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SloPolicy", "OriginSlo", "SloTracker"]


@dataclass(frozen=True)
class SloPolicy:
    """The objectives one origin is held to."""

    #: Fraction of requests that must succeed (no 5xx / transport error).
    availability: float = 0.99
    #: Latency threshold in seconds...
    latency_threshold: float = 0.5
    #: ...that this fraction of requests must meet.
    latency_objective: float = 0.95

    def __post_init__(self):
        for name in ("availability", "latency_objective"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be > 0 seconds")


@dataclass
class OriginSlo:
    """Running tallies of one origin against a policy."""

    origin: str
    policy: SloPolicy
    requests: int = 0
    errors: int = 0
    slow: int = 0
    durations: List[float] = field(default_factory=list)

    def record(self, duration: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        if duration > self.policy.latency_threshold:
            self.slow += 1
        self.durations.append(float(duration))

    # -- read side ----------------------------------------------------------

    @property
    def availability(self) -> float:
        if not self.requests:
            return 1.0
        return 1.0 - self.errors / self.requests

    @property
    def latency_attainment(self) -> float:
        """Fraction of requests that met the latency threshold."""
        if not self.requests:
            return 1.0
        return 1.0 - self.slow / self.requests

    def latency_percentile(self, q: float) -> Optional[float]:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.durations:
            return None
        ordered = sorted(self.durations)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def budget_remaining(self) -> float:
        """Unspent fraction of the availability error budget."""
        budget = 1.0 - self.policy.availability
        if not self.requests or budget <= 0:
            return 1.0 if not self.errors else float("-inf")
        spent = (self.errors / self.requests) / budget
        return 1.0 - spent

    @property
    def availability_ok(self) -> bool:
        return self.availability >= self.policy.availability

    @property
    def latency_ok(self) -> bool:
        return self.latency_attainment >= self.policy.latency_objective

    @property
    def verdict(self) -> str:
        """``OK`` when every objective holds, else ``BREACH``."""
        return "OK" if self.availability_ok and self.latency_ok else "BREACH"


class SloTracker:
    """Folds request outcomes into per-origin SLO state."""

    def __init__(self, policy: Optional[SloPolicy] = None):
        self.policy = policy or SloPolicy()
        self._origins: Dict[str, OriginSlo] = {}

    def record(self, origin: str, duration: float, ok: bool) -> None:
        """Fold one request outcome into ``origin``'s tallies."""
        state = self._origins.get(origin)
        if state is None:
            state = OriginSlo(origin=origin, policy=self.policy)
            self._origins[origin] = state
        state.record(duration, ok)

    def origin(self, origin: str) -> Optional[OriginSlo]:
        return self._origins.get(origin)

    def origins(self) -> List[OriginSlo]:
        """Every tracked origin, sorted by name (deterministic)."""
        return [self._origins[name] for name in sorted(self._origins)]

    def __len__(self) -> int:
        return len(self._origins)
