"""Wire-level trace propagation (W3C ``traceparent`` style).

One request must be one joinable story across both processes: the
client injects a ``Traceparent`` header carrying its trace and span
IDs, the server parses it, and every server-side record (spans, the
access log, wide events) carries the client's IDs. The header follows
the W3C Trace Context layout::

    00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>

The IDs are the tracer's integers rendered as fixed-width hex, so the
same value appears identically in client spans, server spans and log
records — and seeded simulator runs stay byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "format_trace_id",
    "format_span_id",
    "format_traceparent",
    "parse_traceparent",
    "inject_traceparent",
]

#: Canonical header name (HTTP headers are case-insensitive).
TRACEPARENT_HEADER = "Traceparent"

#: W3C trace-context version this implementation speaks.
_VERSION = "00"
#: Flags byte: "sampled" is always set (we never head-sample).
_FLAGS = "01"


def format_trace_id(trace_id: int) -> str:
    """32-hex-digit rendering of a tracer's integer trace ID."""
    return f"{trace_id & (2**128 - 1):032x}"


def format_span_id(span_id: int) -> str:
    """16-hex-digit rendering of a tracer's integer span ID."""
    return f"{span_id & (2**64 - 1):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The propagated identifiers of one in-flight request."""

    trace_id: int
    span_id: int
    sampled: bool = True

    @property
    def trace_id_hex(self) -> str:
        return format_trace_id(self.trace_id)

    @property
    def span_id_hex(self) -> str:
        return format_span_id(self.span_id)


def format_traceparent(span) -> Optional[str]:
    """The ``traceparent`` value for ``span`` (None for null spans).

    A disabled tracer hands out the shared null span with
    ``trace_id == 0`` — an all-zero trace ID is invalid per the W3C
    grammar, so nothing is injected and the wire stays unchanged.
    """
    if span is None or not getattr(span, "trace_id", 0):
        return None
    return (
        f"{_VERSION}-{format_trace_id(span.trace_id)}"
        f"-{format_span_id(span.span_id)}-{_FLAGS}"
    )


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; None on anything malformed.

    Tolerant by design: a server must serve requests whether or not the
    client propagates, and garbage must never break request handling.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_hex, span_hex, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or len(trace_hex) != 32 or len(span_hex) != 16:
        return None
    if len(flags) != 2:
        return None
    try:
        trace_id = int(trace_hex, 16)
        span_id = int(span_hex, 16)
        flag_bits = int(flags, 16)
        int(version, 16)
    except ValueError:
        return None
    if trace_id == 0 or span_id == 0:
        return None  # all-zero IDs are invalid per the W3C grammar
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(flag_bits & 0x01),
    )


def inject_traceparent(headers, span) -> bool:
    """Set the header on ``headers`` from ``span``; True if injected.

    Uses ``setdefault`` so an application-supplied header wins, and is
    a no-op for null/absent spans.
    """
    value = format_traceparent(span)
    if value is None:
        return False
    headers.setdefault(TRACEPARENT_HEADER, value)
    return True
