"""Cluster-wide telemetry collection: sink, wire format, collector.

Per-process telemetry (tracer ring buffers, event logs, metric
registries) answers "what did *this* node do"; federation-scale tuning
needs "where did this second go *across* nodes". This module is the
transport layer of that story:

* :class:`TelemetrySink` — attached to a node's ``Tracer`` and
  ``EventLog`` as their ``sink`` hook. Recording is a bounds check and
  an append of an object reference (the hot path stays cheap — see
  ``bench_collector_overhead``); serialisation happens at drain time.
  The queue is bounded and drop-counting, and a flush is deterministic:
  records encode in emit order with canonical JSON, so two seeded runs
  produce byte-identical artefacts.
* The **wire format** — JSON lines, one record per line, three record
  types (see below). ``encode_*`` / :func:`record_to_json` produce it,
  :func:`parse_records` consumes it.
* :class:`TelemetryCollector` — the ingest store behind the
  ``POST /v1/telemetry`` endpoint every server app can mount
  (``ServerConfig(collector=...)``) and the target of in-process
  flushes. :mod:`repro.obs.analyze` reads its records back out.

Wire format (one JSON object per line, keys sorted)::

    {"type":"span","node":"client","name":"request",
     "trace":"<32 hex>","span":"<16 hex>","parent":"<16 hex>"|null,
     "remote":false,"start":1.5,"end":2.5,"attrs":{...}}
    {"type":"event","node":"proxy","event":{"kind":"request",...}}
    {"type":"metrics","node":"origin","ts":9.0,
     "series":{"name{label=v}":value,...}}

Span/trace IDs are rendered in the same hex widths the ``Traceparent``
header carries, which is exactly what lets the assembler join client
and server spans minted on different nodes.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.events import _norm
from repro.obs.propagation import format_span_id, format_trace_id

__all__ = [
    "TELEMETRY_PATH",
    "TELEMETRY_CONTENT_TYPE",
    "TelemetrySink",
    "TelemetryCollector",
    "encode_span",
    "encode_event",
    "encode_metrics",
    "record_to_json",
    "records_to_json_lines",
    "parse_records",
    "push_telemetry",
]

#: Default mount path of the collector ingest endpoint.
TELEMETRY_PATH = "/v1/telemetry"

#: Content type of a telemetry batch.
TELEMETRY_CONTENT_TYPE = "application/x-ndjson"


def _json_safe(value):
    """Span attributes are arbitrary objects; the wire is JSON only."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _json_safe(as_dict())
    return str(value)


def encode_span(span, node: str) -> Dict[str, object]:
    """One finished :class:`~repro.obs.tracing.Span` as a wire record."""
    parent = span.parent_id
    return {
        "type": "span",
        "node": node,
        "name": span.name,
        "trace": format_trace_id(span.trace_id),
        "span": format_span_id(span.span_id),
        "parent": None if parent is None else format_span_id(parent),
        "remote": bool(getattr(span, "remote", False)),
        "start": span.start,
        "end": span.end_time if span.end_time is not None else span.start,
        "attrs": _json_safe(span.attrs),
    }


def encode_event(event: Dict[str, object], node: str) -> Dict[str, object]:
    """One wide-event record as a wire record."""
    return {"type": "event", "node": node, "event": _json_safe(dict(event))}


def encode_metrics(
    series: Dict[str, object], node: str, ts: float
) -> Dict[str, object]:
    """One registry snapshot (``MetricsRegistry.snapshot()``) as a
    wire record. Snapshots are cumulative; the analyzer keeps the last
    one per node."""
    return {
        "type": "metrics",
        "node": node,
        "ts": ts,
        "series": _json_safe(series),
    }


def record_to_json(record: Dict[str, object]) -> str:
    """One wire record as its canonical JSON line (sorted keys,
    integral floats as ints — the same normalisation the event log
    uses, so artefacts diff byte-for-byte across seeded runs)."""
    return json.dumps(_norm(dict(record)), sort_keys=True)


def records_to_json_lines(records: Iterable[Dict[str, object]]) -> str:
    """Records as JSONL in the given order."""
    return "\n".join(record_to_json(record) for record in records)


def parse_records(text: str) -> List[Dict[str, object]]:
    """Inverse of :func:`records_to_json_lines` (blank lines skipped)."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


class TelemetrySink:
    """Bounded, drop-counting queue between one node and the collector.

    Wire it into a node's observability objects as their ``sink``
    hooks::

        sink = TelemetrySink(node="client", target=collector)
        tracer.sink = sink.record_span
        events.sink = sink.record_event

    ``record_*`` enqueue object *references* — nothing is serialised
    until :meth:`drain`, which encodes the queue in record order and
    empties it. Delivery is either in-process (``target`` is a
    :class:`TelemetryCollector`; :meth:`flush` hands the encoded
    records straight over) or over HTTP (:func:`push_telemetry` POSTs
    a drained batch as a JSONL body).
    """

    def __init__(
        self,
        node: str,
        capacity: int = 65536,
        target: Optional["TelemetryCollector"] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.node = node
        self.capacity = capacity
        self.target = target
        self.clock = clock or (lambda: 0.0)
        self.dropped = 0
        self._queue: List[tuple] = []

    # -- hot-path hooks (cheap: bounds check + append) ------------------------

    def record_span(self, span) -> None:
        """``Tracer.sink`` hook: one finished span."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        self._queue.append(("span", span))

    def record_event(self, event: Dict[str, object]) -> None:
        """``EventLog.sink`` hook: one wide event."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        self._queue.append(("event", event))

    def record_metrics(self, registry, ts: Optional[float] = None) -> None:
        """Snapshot a :class:`~repro.obs.MetricsRegistry` into the
        queue (called at flush points, not per-request)."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        stamp = self.clock() if ts is None else ts
        self._queue.append(("metrics", registry.snapshot(), stamp))

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- drain / delivery ------------------------------------------------------

    def drain(self) -> List[Dict[str, object]]:
        """Encode and clear the queue; records come out in emit order."""
        records: List[Dict[str, object]] = []
        for item in self._queue:
            if item[0] == "span":
                records.append(encode_span(item[1], self.node))
            elif item[0] == "event":
                records.append(encode_event(item[1], self.node))
            else:
                records.append(encode_metrics(item[1], self.node, item[2]))
        self._queue.clear()
        return records

    def flush(
        self, target: Optional["TelemetryCollector"] = None
    ) -> List[Dict[str, object]]:
        """Drain and deliver in-process to ``target`` (or the bound
        one). With no target at all the drained records are simply
        returned — callers may POST them via :func:`push_telemetry`."""
        records = self.drain()
        collector = target if target is not None else self.target
        if collector is not None and records:
            collector.ingest(records)
        return records


class TelemetryCollector:
    """The cluster-wide ingest store behind ``POST /v1/telemetry``.

    Accepts wire records (already-parsed dicts or JSONL bodies) from
    any number of nodes and retains them in arrival order, bounded and
    drop-counting like every other telemetry buffer in the tree.
    :mod:`repro.obs.analyze` assembles its records into trace trees.
    """

    def __init__(self, capacity: int = 1_000_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self.batches = 0
        self._records: List[Dict[str, object]] = []

    def ingest(self, records: Iterable[Dict[str, object]]) -> int:
        """Store one batch of parsed records; returns how many were
        accepted (the rest counted in ``dropped``)."""
        accepted = 0
        for record in records:
            if len(self._records) >= self.capacity:
                self.dropped += 1
                continue
            self._records.append(record)
            accepted += 1
        self.batches += 1
        return accepted

    def ingest_lines(self, text: str) -> int:
        """Parse and store one JSONL batch (the HTTP body form)."""
        return self.ingest(parse_records(text))

    # -- read side ------------------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """Every retained record in arrival order."""
        return list(self._records)

    def spans(self) -> List[Dict[str, object]]:
        return [r for r in self._records if r.get("type") == "span"]

    def events(self) -> List[Dict[str, object]]:
        return [r for r in self._records if r.get("type") == "event"]

    def metrics_snapshots(self) -> List[Dict[str, object]]:
        return [r for r in self._records if r.get("type") == "metrics"]

    def nodes(self) -> List[str]:
        """Distinct reporting nodes, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            node = record.get("node")
            if isinstance(node, str) and node not in seen:
                seen.append(node)
        return seen

    def to_json_lines(self) -> str:
        """The retained records as canonical JSONL — the artefact the
        CI perf-smoke job uploads and ``davix-tool trace`` reads."""
        return records_to_json_lines(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


def push_telemetry(context, url: str, sink: TelemetrySink):
    """Effect sub-op: POST the sink's drained backlog to a collector
    endpoint as one JSONL batch.

    Drains *before* building the request so the batch excludes the
    spans the push itself produces. A 2xx commits the drain; anything
    else re-queues nothing (telemetry is lossy by design — the drop
    counter on the server side still tells the story).
    """
    from repro.core.request import execute_request
    from repro.http.headers import Headers
    from repro.http.messages import Request
    from repro.http.uri import Url

    records = sink.drain()
    if not records:
        return None
    body = (records_to_json_lines(records) + "\n").encode("utf-8")
    target = url if isinstance(url, Url) else Url.parse(url)
    request = Request(
        "POST",
        target.target,
        Headers([("Content-Type", TELEMETRY_CONTENT_TYPE)]),
        body,
    )
    response, _ = yield from execute_request(context, target, request)
    return response
