"""Request tracing: lightweight nested spans over an injected clock.

A :class:`Tracer` produces :class:`Span` objects forming the hierarchy
the paper's timing discussion implies::

    request
    ├── session-acquire
    │   ├── tcp-connect
    │   └── tls-handshake
    └── exchange
        ├── send
        └── recv

Spans work on any clock — the simulator's virtual time or a monotonic
wall clock — because the tracer never calls ``time`` itself; the
:class:`~repro.core.context.Context` wires its own clock in. Parentage
is explicit (``span.child(...)``) on the request path, with an implicit
current-span stack for ``with tracer.span(...):`` convenience. The
stack is per-tracer, not per-task: under concurrent simulator tasks
(``run_parallel``, multistream) prefer explicit parents or
``root=True`` spans.

Finished spans land in a bounded ring buffer; exporters in
:mod:`repro.obs.export` render them as a tree or JSON lines.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed operation; ends at most once, children attach by id."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end_time",
        "attrs",
        "remote",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, object],
        remote: bool = False,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs = attrs
        self.remote = remote

    def child(self, name: str, **attrs) -> "Span":
        """Start a child span explicitly parented to this one."""
        return self.tracer.start(name, parent=self, **attrs)

    def set(self, **attrs) -> "Span":
        """Attach attributes (last write wins); returns self."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs) -> None:
        """Finish the span (idempotent); extra attrs are attached."""
        if attrs:
            self.attrs.update(attrs)
        if self.end_time is None:
            self.tracer._finish(self)

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()

    def __repr__(self) -> str:
        state = (
            f"{self.duration:.6f}s" if self.ended else "open"
        )
        return f"<Span {self.name} id={self.span_id} {state}>"


class _NullSpan:
    """The no-op span a disabled tracer hands out."""

    __slots__ = ()
    name = "null"
    trace_id = span_id = 0
    parent_id = None
    start = 0.0
    end_time: Optional[float] = None
    attrs: Dict[str, object] = {}
    ended = False
    duration = None
    remote = False

    def child(self, name: str, **attrs) -> "_NullSpan":
        return self

    def set(self, **attrs) -> "_NullSpan":
        return self

    def end(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Shared no-op span (what ``Tracer(enabled=False).start`` returns).
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and retains the finished ones (bounded).

    ``clock`` is any zero-argument callable returning seconds; the
    Context injects the runtime clock so simulated traces carry
    simulated timestamps. ``enabled=False`` makes ``start`` return the
    shared :data:`NULL_SPAN` — the instrumented request path stays
    branch-free while recording nothing.

    ``node`` names the process this tracer runs in for cluster-wide
    collection: IDs are minted inside a per-node namespace (the CRC32
    of the name shifted above the sequence bits), so spans from
    different nodes never collide when assembled into one trace tree.
    Without a node the namespace is zero and IDs are the plain small
    integers they always were. ``sink`` is an optional callable invoked
    with each span as it finishes (see
    :class:`~repro.obs.collector.TelemetrySink`).
    """

    def __init__(
        self,
        clock=None,
        capacity: int = 10_000,
        enabled=True,
        node: Optional[str] = None,
        sink=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.node = node
        self.sink = sink
        namespace = (
            zlib.crc32(node.encode("utf-8")) & 0xFFFFFFFF if node else 0
        )
        self._span_ns = namespace << 32
        self._trace_ns = namespace << 64
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- span production ------------------------------------------------------

    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        root: bool = False,
        remote=None,
        **attrs,
    ) -> Span:
        """Begin a span; default parent is the current innermost span.

        ``root=True`` forces a new trace (use it for spans started from
        concurrently interleaved simulator tasks). ``remote`` (a
        :class:`~repro.obs.propagation.TraceContext`) joins a trace
        propagated from another process: the span adopts the remote
        trace ID and parents to the remote span ID, ignoring the local
        stack — this is how server-side spans continue a client's
        story.
        """
        if not self.enabled:
            return NULL_SPAN
        joined_remote = remote is not None
        if joined_remote:
            trace_id = remote.trace_id
            parent_id = remote.span_id
        else:
            if parent is None and not root and self._stack:
                parent = self._stack[-1]
            if isinstance(parent, _NullSpan):
                parent = None
            if parent is None:
                trace_id = self._trace_ns | self._next_trace_id
                self._next_trace_id += 1
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
        span = Span(
            tracer=self,
            name=name,
            trace_id=trace_id,
            span_id=self._span_ns | self._next_span_id,
            parent_id=parent_id,
            start=self.clock(),
            attrs=dict(attrs),
            remote=joined_remote,
        )
        self._next_span_id += 1
        self._stack.append(span)
        return span

    def span(self, name: str, **attrs) -> Span:
        """Context-manager sugar: ``with tracer.span("step"): ...``."""
        return self.start(name, **attrs)

    def _finish(self, span: Span) -> None:
        span.end_time = self.clock()
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        self._finished.append(span)
        if self.sink is not None:
            self.sink(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost unfinished span, if any."""
        return self._stack[-1] if self._stack else None

    # -- read side ------------------------------------------------------------

    def finished(self) -> List[Span]:
        """Finished spans in end order."""
        return list(self._finished)

    def by_name(self, name: str) -> List[Span]:
        """Finished spans with the given name."""
        return [span for span in self._finished if span.name == name]

    def clear(self) -> None:
        self._finished.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._finished)
