"""Per-request phase profiling: where one request's time goes.

The paper's Figure 2 (keep-alive amortising connection setup) and
Figure 3 (vectored reads collapsing range round trips) are claims about
*phases* of a request, not its total. Every request therefore records a
:class:`RequestTimings` breakdown:

============== =====================================================
cache-lookup    probing the client page cache (and, on the proxy,
                its page store) before any request leaves the process
queue-wait      entering the engine until a session is in hand
                (pool checkout, breaker/deadline checks, and — on
                retries — the backoff sleep before the next attempt)
connect         TCP connect of a fresh session (0 on a pool hit)
tls             TLS handshake of a fresh session (0 for plain http)
request-write   serialising and sending the request bytes
ttfb            request sent until the first response byte arrives
body-transfer   first response byte until the body completes
multipart-decode decoding a multipart/byteranges body into parts
                (recorded by the vectored-read layer)
readahead-wait  demanded read blocked on an in-flight speculative
                batch (recorded by the transfer engine; the portion
                of a prefetch the application did *not* overlap)
============== =====================================================

The mechanics are a :class:`PhaseRecorder`: the request path drops a
*mark* at each phase boundary and the interval since the previous mark
is attributed to the marked phase. Marks are cumulative across
redirects and retries, so the phases of one logical request always sum
to the enclosing ``request`` span's duration (exactly, on the
simulated clock).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Tuple

__all__ = ["PHASES", "RequestTimings", "PhaseRecorder"]

#: Canonical phase order (label form, as used in metric labels).
PHASES = (
    "cache-lookup",
    "queue-wait",
    "connect",
    "tls",
    "request-write",
    "ttfb",
    "body-transfer",
    "multipart-decode",
    "readahead-wait",
)


def _field_name(phase: str) -> str:
    return phase.replace("-", "_")


@dataclass(frozen=True)
class RequestTimings:
    """Seconds spent in each phase of one request."""

    cache_lookup: float = 0.0
    queue_wait: float = 0.0
    connect: float = 0.0
    tls: float = 0.0
    request_write: float = 0.0
    ttfb: float = 0.0
    body_transfer: float = 0.0
    multipart_decode: float = 0.0
    readahead_wait: float = 0.0

    @property
    def total(self) -> float:
        """Sum of every phase (== the request span's duration)."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, float]:
        """``phase-label -> seconds`` in canonical phase order."""
        return {
            phase: getattr(self, _field_name(phase)) for phase in PHASES
        }

    def __repr__(self) -> str:
        inner = " ".join(
            f"{phase}={value:.6f}"
            for phase, value in self.as_dict().items()
            if value
        )
        return f"<RequestTimings {inner or 'empty'}>"


class PhaseRecorder:
    """Accumulates phase marks against an injected clock.

    ``mark(phase)`` attributes the time since the previous mark (or
    since construction) to ``phase``; repeated marks of one phase add
    up, which is what makes redirect- and retry-crossing requests sum
    correctly. The recorder never calls ``time`` itself — the request
    engine hands in the context clock, so simulated requests profile in
    simulated seconds.
    """

    __slots__ = ("clock", "_last", "_elapsed")

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self._last = clock()
        self._elapsed: Dict[str, float] = {}

    def mark(self, phase: str) -> float:
        """Close the interval since the last mark into ``phase``."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        now = self.clock()
        delta = now - self._last
        self._last = now
        self._elapsed[phase] = self._elapsed.get(phase, 0.0) + delta
        return delta

    def add(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``phase`` without moving the mark
        (used for phases measured out-of-band, e.g. multipart decode)."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        self._elapsed[phase] = self._elapsed.get(phase, 0.0) + seconds

    def elapsed(self) -> List[Tuple[str, float]]:
        """Recorded ``(phase, seconds)`` pairs in canonical order."""
        return [
            (phase, self._elapsed[phase])
            for phase in PHASES
            if phase in self._elapsed
        ]

    def timings(self) -> RequestTimings:
        """Freeze the accumulated marks into a :class:`RequestTimings`."""
        return RequestTimings(
            **{
                _field_name(phase): seconds
                for phase, seconds in self._elapsed.items()
            }
        )
