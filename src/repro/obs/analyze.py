"""Cross-node trace assembly and attribution analysis.

Reads the wire records a :class:`~repro.obs.collector.TelemetryCollector`
gathered from every node and answers the two questions per-process
telemetry cannot:

* **Where did this second go?** — :func:`assemble_traces` joins client
  and server spans (matched through the propagated ``Traceparent``
  IDs) into :class:`TraceTree` objects; :func:`critical_path` then
  partitions the root span's interval over the tree so that every
  sub-interval is attributed to exactly one ``(node, label)`` bucket.
  The arithmetic runs on :class:`fractions.Fraction` over the raw
  timestamps, so the bucket total equals the root duration *exactly* —
  not approximately — even though timestamps are floats.
* **Which node served this byte?** — :func:`byte_provenance` folds the
  client's delivery-time ``provenance.bytes_total`` counters, the
  proxy's per-request served/from-cache split events and the TPC
  transfer events into a :class:`ProvenanceLedger` whose buckets sum
  to the bytes the application actually received.

The ``davix-tool trace`` subcommand renders all of this (waterfall,
critical path, provenance, and a two-run diff).

Attribution rules
-----------------

Within one span's interval, time covered by a child belongs to that
child (recursively); when children overlap, the one that ends *last*
wins the overlap — the straggler rule, which is what surfaces the slow
decode lane or TPC stream instead of averaging it away. Time no child
covers is the span's own: bucketed as ``(node, span-name)``, e.g.
``("client", "request")`` for wire waits the client span did not
delegate, ``("proxy", "gap-fetch")`` for the proxy's cache bookkeeping
around its upstream fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SpanRecord",
    "TraceTree",
    "CriticalPath",
    "ProvenanceLedger",
    "span_records",
    "assemble_traces",
    "critical_path",
    "stragglers",
    "byte_provenance",
    "render_waterfall",
    "render_critical_path",
    "render_provenance",
    "render_trace_summary",
    "render_trace_diff",
]


@dataclass
class SpanRecord:
    """One span as collected: IDs in wire (hex) form, float times."""

    node: str
    name: str
    trace: str
    span: str
    parent: Optional[str]
    remote: bool
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "SpanRecord":
        return cls(
            node=str(record.get("node", "?")),
            name=str(record.get("name", "?")),
            trace=str(record.get("trace", "")),
            span=str(record.get("span", "")),
            parent=record.get("parent"),
            remote=bool(record.get("remote", False)),
            start=float(record.get("start", 0.0)),
            end=float(record.get("end", 0.0)),
            attrs=dict(record.get("attrs") or {}),
        )


def span_records(records: Iterable[Dict[str, object]]) -> List[SpanRecord]:
    """The span records of a collected batch, in arrival order."""
    return [
        SpanRecord.from_record(record)
        for record in records
        if record.get("type") == "span"
    ]


class TraceTree:
    """One assembled trace: a root, a child index, and any orphans.

    ``orphans`` are spans whose parent ID never arrived at the
    collector — in a healthy collection there are none; a dropped
    batch or an un-instrumented hop shows up here first.
    """

    def __init__(self, trace: str, spans: List[SpanRecord]):
        self.trace = trace
        self.spans = spans
        by_id: Dict[str, SpanRecord] = {s.span: s for s in spans}
        self.children: Dict[str, List[SpanRecord]] = {}
        roots: List[SpanRecord] = []
        orphans: List[SpanRecord] = []
        for span in spans:
            if span.parent is None:
                roots.append(span)
            elif span.parent in by_id:
                self.children.setdefault(span.parent, []).append(span)
            else:
                orphans.append(span)
        for kids in self.children.values():
            kids.sort(key=lambda s: (s.start, s.end, s.span))
        if roots:
            roots.sort(key=lambda s: (s.start, s.end, s.span))
            self.root: Optional[SpanRecord] = roots[0]
            # Extra parentless spans are *also* roots of their own
            # subtrees; a single-tree trace has exactly one.
            orphans.extend(roots[1:])
        elif orphans:
            # No true root collected: promote the earliest orphan so
            # the tree is still renderable, keep the rest flagged.
            orphans.sort(key=lambda s: (s.start, s.end, s.span))
            self.root = orphans[0]
            orphans = orphans[1:]
        else:
            self.root = None
        self.orphans = orphans

    @property
    def is_single_tree(self) -> bool:
        return self.root is not None and not self.orphans

    def nodes(self) -> List[str]:
        """Distinct reporting nodes in this trace, first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.node not in seen:
                seen.append(span.node)
        return seen

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        return self.children.get(span.span, [])

    def walk(self) -> List[Tuple[int, SpanRecord]]:
        """Depth-first ``(depth, span)`` pairs from the root."""
        out: List[Tuple[int, SpanRecord]] = []
        if self.root is None:
            return out
        stack: List[Tuple[int, SpanRecord]] = [(0, self.root)]
        while stack:
            depth, span = stack.pop()
            out.append((depth, span))
            for child in reversed(self.children_of(span)):
                stack.append((depth + 1, child))
        return out


def assemble_traces(
    records: Iterable[Dict[str, object]]
) -> List[TraceTree]:
    """Join collected spans into per-trace trees.

    Spans from different nodes land in the same tree because the
    ``Traceparent`` join gave the server span the client's trace ID
    and the client's span ID as its parent — the same hex strings both
    sides put on the wire.
    """
    by_trace: Dict[str, List[SpanRecord]] = {}
    order: List[str] = []
    for span in span_records(records):
        if span.trace not in by_trace:
            by_trace[span.trace] = []
            order.append(span.trace)
        by_trace[span.trace].append(span)
    return [TraceTree(trace, by_trace[trace]) for trace in order]


# -- critical path ------------------------------------------------------------


class CriticalPath:
    """Exact attribution of one root span's duration.

    ``entries`` maps ``(node, label) -> Fraction`` seconds;
    :attr:`total` and :attr:`root_duration` are equal by construction
    (the partition telescopes), and both are Fractions so the equality
    is exact, not approximate. :meth:`seconds` gives float views for
    rendering.
    """

    def __init__(self, tree: TraceTree):
        self.tree = tree
        self.entries: Dict[Tuple[str, str], Fraction] = {}

    def _add(self, node: str, label: str, amount: Fraction) -> None:
        if amount <= 0:
            return
        key = (node, label)
        self.entries[key] = self.entries.get(key, Fraction(0)) + amount

    @property
    def total(self) -> Fraction:
        return sum(self.entries.values(), Fraction(0))

    @property
    def root_duration(self) -> Fraction:
        root = self.tree.root
        if root is None:
            return Fraction(0)
        return Fraction(root.end) - Fraction(root.start)

    def seconds(self) -> List[Tuple[str, str, float]]:
        """``(node, label, seconds)`` sorted by descending share."""
        rows = [
            (node, label, float(amount))
            for (node, label), amount in self.entries.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows


def critical_path(tree: TraceTree) -> CriticalPath:
    """Partition the root interval over the tree (straggler rule).

    Every instant of ``[root.start, root.end]`` is attributed to
    exactly one span: the deepest covering span whose end time is the
    latest among overlapping siblings. Self time lands in the span's
    own ``(node, name)`` bucket.
    """
    path = CriticalPath(tree)
    root = tree.root
    if root is None:
        return path
    _partition(
        tree, root, Fraction(root.start), Fraction(root.end), path
    )
    return path


def _partition(
    tree: TraceTree,
    span: SpanRecord,
    lo: Fraction,
    hi: Fraction,
    path: CriticalPath,
) -> None:
    if hi <= lo:
        return
    kids = []
    for child in tree.children_of(span):
        start = max(Fraction(child.start), lo)
        end = min(Fraction(child.end), hi)
        if end > start:
            kids.append((start, end, child))
    if not kids:
        path._add(span.node, span.name, hi - lo)
        return
    cuts = {lo, hi}
    for start, end, _child in kids:
        cuts.add(start)
        cuts.add(end)
    points = sorted(cuts)
    for a, b in zip(points, points[1:]):
        covering = [
            child
            for start, end, child in kids
            if start <= a and end >= b
        ]
        if not covering:
            path._add(span.node, span.name, b - a)
            continue
        # Straggler rule: the child finishing last owns the overlap —
        # ties broken by latest start, then span id, for determinism.
        winner = max(
            covering, key=lambda c: (c.end, c.start, c.span)
        )
        _partition(tree, winner, a, b, path)


# -- stragglers ---------------------------------------------------------------


def _group_key(name: str) -> str:
    """Sibling spans of one fan-out share a name modulo a numeric
    suffix (``tpc-stream-0`` … ``tpc-stream-3``)."""
    return name.rstrip("0123456789").rstrip("-_")


def stragglers(
    tree: TraceTree, threshold: float = 0.10
) -> List[Dict[str, object]]:
    """Fan-out groups (decode lanes, TPC streams) where the slowest
    sibling ends more than ``threshold`` of the group wall-clock after
    the runner-up. One dict per flagged group."""
    flagged: List[Dict[str, object]] = []
    for parent_id, kids in sorted(tree.children.items()):
        groups: Dict[str, List[SpanRecord]] = {}
        for child in kids:
            groups.setdefault(_group_key(child.name), []).append(child)
        for key, members in sorted(groups.items()):
            if len(members) < 2:
                continue
            members = sorted(members, key=lambda s: (s.end, s.span))
            last, runner_up = members[-1], members[-2]
            first_start = min(s.start for s in members)
            wall = last.end - first_start
            slack = last.end - runner_up.end
            if wall > 0 and slack / wall > threshold:
                flagged.append(
                    {
                        "group": key,
                        "node": last.node,
                        "straggler": last.name,
                        "span": last.span,
                        "members": len(members),
                        "slack_seconds": slack,
                        "wall_seconds": wall,
                    }
                )
    return flagged


# -- byte provenance ----------------------------------------------------------


@dataclass
class ProvenanceLedger:
    """Where every delivered byte came from.

    ``page_cache`` and ``network`` are the client's delivery-time
    split (each byte handed to the application charged to exactly one
    of the two); ``proxy_cache``/``origin`` refine the network bucket
    using the proxy's own served/from-cache events; ``tpc`` counts
    bytes moved peer-to-peer by third-party-copy streams. The identity
    ``total == page_cache + network + tpc`` holds exactly.
    """

    page_cache: int = 0
    network: int = 0
    proxy_cache: int = 0
    origin: int = 0
    tpc: int = 0
    #: The proxy's own view (may exceed the client's delivered bytes
    #: when the client trims page-aligned overfetch).
    proxy_served: int = 0
    proxy_from_cache: int = 0
    proxy_from_origin: int = 0

    @property
    def total(self) -> int:
        """Every delivered byte, across all sources."""
        return self.page_cache + self.network + self.tpc


def _series_value(series: Dict[str, object], key: str) -> int:
    value = series.get(key, 0)
    if isinstance(value, (list, tuple)):  # histogram (count, sum)
        return int(value[1])
    return int(value)


def byte_provenance(
    records: Iterable[Dict[str, object]]
) -> ProvenanceLedger:
    """Fold collected records into a :class:`ProvenanceLedger`.

    Metric snapshots are cumulative, so only the *last* snapshot per
    node contributes; proxy and tpc wide events are per-request and
    simply sum.
    """
    ledger = ProvenanceLedger()
    last_metrics: Dict[str, Dict[str, object]] = {}
    for record in records:
        rtype = record.get("type")
        if rtype == "metrics":
            last_metrics[str(record.get("node", "?"))] = (
                record.get("series") or {}
            )
        elif rtype == "event":
            event = record.get("event") or {}
            kind = event.get("kind")
            if kind == "proxy":
                served = int(event.get("served_bytes", 0))
                from_cache = int(event.get("from_cache_bytes", 0))
                ledger.proxy_served += served
                ledger.proxy_from_cache += from_cache
                ledger.proxy_from_origin += served - from_cache
            elif kind == "tpc" and event.get("ok"):
                ledger.tpc += int(event.get("bytes", 0))
    for series in last_metrics.values():
        ledger.page_cache += _series_value(
            series, "provenance.bytes_total{source=page-cache}"
        )
        ledger.network += _series_value(
            series, "provenance.bytes_total{source=network}"
        )
    # The network bytes the proxy says it served from its page store;
    # clamped because the proxy may have served (page-aligned) bytes
    # the client trimmed before delivery.
    ledger.proxy_cache = min(ledger.network, ledger.proxy_from_cache)
    ledger.origin = ledger.network - ledger.proxy_cache
    return ledger


# -- rendering ----------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    return f"{value:.6f}"


def render_waterfall(tree: TraceTree, width: int = 40) -> str:
    """ASCII waterfall of one trace: depth-indented spans with bars
    positioned on the root's timeline."""
    lines: List[str] = []
    root = tree.root
    if root is None:
        return "(empty trace)"
    span_total = max(root.duration, 0.0)
    lines.append(
        f"trace {tree.trace}  root={root.name}"
        f"  duration={_fmt_seconds(root.duration)}s"
        f"  nodes={','.join(tree.nodes())}"
    )
    for depth, span in tree.walk():
        if span_total > 0:
            left = int(
                (span.start - root.start) / span_total * width
            )
            extent = max(
                1, int(round(span.duration / span_total * width))
            )
            left = min(left, width - 1)
            extent = min(extent, width - left)
        else:
            left, extent = 0, width
        bar = " " * left + "#" * extent
        bar = bar.ljust(width)
        label = "  " * depth + f"{span.node}:{span.name}"
        mark = " *" if span.remote else ""
        lines.append(
            f"  [{bar}] {_fmt_seconds(span.duration)}s  {label}{mark}"
        )
    if tree.orphans:
        lines.append(f"  ! {len(tree.orphans)} orphan span(s):")
        for span in tree.orphans:
            lines.append(
                f"    - {span.node}:{span.name} span={span.span}"
                f" parent={span.parent}"
            )
    return "\n".join(lines)


def render_critical_path(path: CriticalPath) -> str:
    """The critical-path buckets as a table, largest share first."""
    total = float(path.root_duration)
    lines = [
        f"critical path  root={_fmt_seconds(total)}s"
        f"  (attributed={_fmt_seconds(float(path.total))}s)"
    ]
    for node, label, seconds in path.seconds():
        share = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"  {_fmt_seconds(seconds)}s  {share:5.1f}%"
            f"  {node}:{label}"
        )
    flagged = stragglers(path.tree)
    for item in flagged:
        lines.append(
            f"  straggler: {item['node']}:{item['straggler']}"
            f" (+{_fmt_seconds(float(item['slack_seconds']))}s over"
            f" {item['members']} × {item['group']})"
        )
    return "\n".join(lines)


def render_provenance(ledger: ProvenanceLedger) -> str:
    """The byte ledger as a table."""
    total = ledger.total
    rows = [
        ("page-cache hit", ledger.page_cache),
        ("proxy partial hit", ledger.proxy_cache),
        ("origin fetch", ledger.origin),
        ("tpc stream", ledger.tpc),
    ]
    lines = [f"byte provenance  total delivered={total}"]
    for label, value in rows:
        share = (value / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {value:>14d}  {share:5.1f}%  {label}")
    if ledger.proxy_served:
        lines.append(
            f"  proxy view: served={ledger.proxy_served}"
            f" from-cache={ledger.proxy_from_cache}"
            f" from-origin={ledger.proxy_from_origin}"
        )
    return "\n".join(lines)


def render_trace_summary(
    records: Sequence[Dict[str, object]],
    limit: int = 3,
) -> str:
    """The full ``davix-tool trace`` rendering of one collected run:
    per-trace waterfalls + critical paths for the ``limit`` longest
    multi-node traces, then the run-wide provenance ledger."""
    trees = assemble_traces(records)
    lines: List[str] = []
    single = sum(1 for t in trees if t.is_single_tree)
    orphans = sum(len(t.orphans) for t in trees)
    nodes = sorted(
        {s.node for t in trees for s in t.spans}
    )
    lines.append(
        f"collected {len(list(records))} records,"
        f" {len(trees)} trace(s) ({single} single-tree,"
        f" {orphans} orphan span(s)) from nodes:"
        f" {', '.join(nodes) if nodes else '(none)'}"
    )
    interesting = [t for t in trees if t.root is not None]
    interesting.sort(
        key=lambda t: (-(len(t.nodes())), -t.root.duration, t.trace)
    )
    for tree in interesting[:limit]:
        lines.append("")
        lines.append(render_waterfall(tree))
        lines.append(render_critical_path(critical_path(tree)))
    ledger = byte_provenance(records)
    lines.append("")
    lines.append(render_provenance(ledger))
    return "\n".join(lines) + "\n"


def _aggregate_critical(
    records: Sequence[Dict[str, object]]
) -> Dict[Tuple[str, str], float]:
    """Run-wide ``(node, label) -> seconds`` over every full trace."""
    out: Dict[Tuple[str, str], float] = {}
    for tree in assemble_traces(records):
        if tree.root is None:
            continue
        for (node, label), amount in critical_path(tree).entries.items():
            out[(node, label)] = out.get((node, label), 0.0) + float(
                amount
            )
    return out


def render_trace_diff(
    records_a: Sequence[Dict[str, object]],
    records_b: Sequence[Dict[str, object]],
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Compare two runs bucket by bucket (critical path + bytes)."""
    agg_a = _aggregate_critical(records_a)
    agg_b = _aggregate_critical(records_b)
    keys = sorted(set(agg_a) | set(agg_b))
    lines = [
        f"trace diff  {label_a} vs {label_b}",
        f"  {'bucket':<36} {label_a:>12} {label_b:>12} {'delta':>12}",
    ]
    for node, label in keys:
        a = agg_a.get((node, label), 0.0)
        b = agg_b.get((node, label), 0.0)
        lines.append(
            f"  {node + ':' + label:<36}"
            f" {_fmt_seconds(a):>12} {_fmt_seconds(b):>12}"
            f" {b - a:>+12.6f}"
        )
    ledger_a = byte_provenance(records_a)
    ledger_b = byte_provenance(records_b)
    lines.append(
        f"  bytes: page-cache {ledger_a.page_cache} -> "
        f"{ledger_b.page_cache}, proxy {ledger_a.proxy_cache} -> "
        f"{ledger_b.proxy_cache}, origin {ledger_a.origin} -> "
        f"{ledger_b.origin}, tpc {ledger_a.tpc} -> {ledger_b.tpc}"
    )
    return "\n".join(lines) + "\n"
