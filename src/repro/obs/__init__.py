"""Observability layer: metrics, tracing, propagation, events, SLOs.

The composition point is :class:`~repro.core.context.Context` — it owns
one :class:`MetricsRegistry`, one :class:`Tracer`, one :class:`EventLog`
and one :class:`SloTracker`, and every layer on the request path (pool,
session, vectored I/O, failover, multistream) records into them; the
server side (:class:`~repro.server.handlers.StorageApp`,
:class:`~repro.server.accesslog.AccessLog`) accepts its own registry,
tracer and event log so both ends of a simulated run are visible — and
*joinable*, because the client propagates a W3C-style ``Traceparent``
header (:mod:`repro.obs.propagation`) that the server threads into its
spans, access-log records and wide events. Per-request phase
breakdowns live in :mod:`repro.obs.phases`, sliding-window aggregation
in :mod:`repro.obs.window`, SLO/error-budget tracking in
:mod:`repro.obs.slo`. See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.analyze import (
    CriticalPath,
    ProvenanceLedger,
    SpanRecord,
    TraceTree,
    assemble_traces,
    byte_provenance,
    critical_path,
    render_critical_path,
    render_provenance,
    render_trace_diff,
    render_trace_summary,
    render_waterfall,
    stragglers,
)
from repro.obs.collector import (
    TELEMETRY_CONTENT_TYPE,
    TELEMETRY_PATH,
    TelemetryCollector,
    TelemetrySink,
    parse_records,
    push_telemetry,
    record_to_json,
    records_to_json_lines,
)
from repro.obs.events import (
    EventLog,
    event_to_json,
    events_to_json_lines,
    parse_json_lines,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    metrics_to_json_lines,
    prometheus_exposition,
    render_metrics,
    render_span_tree,
    spans_to_json_lines,
    window_to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.phases import PHASES, PhaseRecorder, RequestTimings
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    TraceContext,
    format_span_id,
    format_trace_id,
    format_traceparent,
    inject_traceparent,
    parse_traceparent,
)
from repro.obs.slo import OriginSlo, SloPolicy, SloTracker
from repro.obs.tracing import NULL_SPAN, Span, Tracer
from repro.obs.window import RollingHistogram, WindowSnapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "format_trace_id",
    "format_span_id",
    "format_traceparent",
    "parse_traceparent",
    "inject_traceparent",
    "PHASES",
    "PhaseRecorder",
    "RequestTimings",
    "EventLog",
    "event_to_json",
    "events_to_json_lines",
    "parse_json_lines",
    "RollingHistogram",
    "WindowSnapshot",
    "SloPolicy",
    "OriginSlo",
    "SloTracker",
    "render_metrics",
    "metrics_to_json_lines",
    "prometheus_exposition",
    "window_to_prometheus",
    "PROMETHEUS_CONTENT_TYPE",
    "render_span_tree",
    "spans_to_json_lines",
    "TELEMETRY_PATH",
    "TELEMETRY_CONTENT_TYPE",
    "TelemetrySink",
    "TelemetryCollector",
    "parse_records",
    "push_telemetry",
    "record_to_json",
    "records_to_json_lines",
    "SpanRecord",
    "TraceTree",
    "CriticalPath",
    "ProvenanceLedger",
    "assemble_traces",
    "critical_path",
    "stragglers",
    "byte_provenance",
    "render_waterfall",
    "render_critical_path",
    "render_provenance",
    "render_trace_summary",
    "render_trace_diff",
]
