"""Observability layer: metrics registry, request tracing, exporters.

The composition point is :class:`~repro.core.context.Context` — it owns
one :class:`MetricsRegistry` and one :class:`Tracer` and every layer on
the request path (pool, session, vectored I/O, failover, multistream)
records into them; the server side (:class:`~repro.server.handlers.
StorageApp`, :class:`~repro.server.accesslog.AccessLog`) accepts a
registry of its own so both ends of a simulated run are visible.
See ``docs/OBSERVABILITY.md`` for the metric names and span hierarchy.
"""

from repro.obs.export import (
    metrics_to_json_lines,
    render_metrics,
    render_span_tree,
    spans_to_json_lines,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "render_metrics",
    "metrics_to_json_lines",
    "render_span_tree",
    "spans_to_json_lines",
]
