"""Exporters: human-readable tables and JSON-lines for metrics/spans.

Two consumers, two formats:

* operators eyeballing a benchmark or ``davix-tool stats`` get aligned
  text tables (:func:`render_metrics`) and an indented span tree
  (:func:`render_span_tree`);
* downstream tooling gets deterministic JSON lines — one object per
  series or span, sorted by name/label, integral floats emitted as
  ints — so outputs diff cleanly and golden tests stay stable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, format_series
from repro.obs.tracing import Span, Tracer

__all__ = [
    "render_metrics",
    "metrics_to_json_lines",
    "prometheus_exposition",
    "window_to_prometheus",
    "render_span_tree",
    "spans_to_json_lines",
]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _num(value: float):
    """Integral floats as ints, so counters export as ``7`` not ``7.0``."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def render_metrics(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Aligned two-column table of every series in the registry."""
    rows: List[tuple] = []
    for instrument in registry.series():
        series = format_series(instrument.name, instrument.labels)
        if instrument.kind == "histogram":
            mean = instrument.mean
            p99 = instrument.percentile(0.99)
            detail = (
                f"count={instrument.count} sum={instrument.sum:.6g}"
            )
            if mean is not None:
                detail += f" mean={mean:.6g} p99={p99:.6g}"
            rows.append((series, detail))
        else:
            rows.append((series, f"{_num(instrument.value)}"))
    if not rows:
        return f"{title}: (empty)"
    width = max(len(series) for series, _ in rows)
    lines = [f"{title}:"]
    for series, value in rows:
        lines.append(f"  {series:<{width}}  {value}")
    return "\n".join(lines)


def metrics_to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON object per series, deterministically ordered."""
    lines = []
    for instrument in registry.series():
        record: Dict[str, object] = {
            "type": instrument.kind,
            "name": instrument.name,
            "labels": dict(instrument.labels),
        }
        if instrument.kind == "histogram":
            record.update(
                count=instrument.count,
                sum=_num(instrument.sum),
                min=_num(instrument.min) if instrument.min is not None else None,
                max=_num(instrument.max) if instrument.max is not None else None,
                buckets={
                    str(_num(bound)): count
                    for bound, count in zip(
                        instrument.buckets, instrument.bucket_counts
                    )
                    if count
                },
            )
        else:
            record["value"] = _num(instrument.value)
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    """A legal Prometheus metric name (dots and dashes -> underscores)."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_value(value: str) -> str:
    """Escape a label value per the text-format grammar."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels, extra=()) -> str:
    """``{k="v",...}`` or empty; label keys stay in sorted series order."""
    pairs = [
        f'{_prom_name(key)}="{_prom_label_value(value)}"'
        for key, value in tuple(labels) + tuple(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _prom_value(value: float) -> str:
    number = _num(value)
    return repr(number) if isinstance(number, float) else str(number)


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (0.0.4).

    Deterministic: families sorted by name, series by label key, one
    ``# TYPE`` line per family. Histograms render the convention in
    full — cumulative ``_bucket`` counts ending at ``le="+Inf"``, plus
    ``_sum`` and ``_count``. Ends with a trailing newline as the
    format requires.
    """
    lines: List[str] = []
    current_family = None
    for instrument in registry.series():
        name = _prom_name(instrument.name)
        if name != current_family:
            lines.append(f"# TYPE {name} {instrument.kind}")
            current_family = name
        if instrument.kind == "histogram":
            cumulative = 0
            for bound, count in zip(
                instrument.buckets, instrument.bucket_counts
            ):
                cumulative += count
                labels = _prom_labels(
                    instrument.labels, extra=(("le", str(_num(bound))),)
                )
                lines.append(f"{name}_bucket{labels} {cumulative}")
            cumulative += instrument.bucket_counts[-1]
            labels = _prom_labels(
                instrument.labels, extra=(("le", "+Inf"),)
            )
            lines.append(f"{name}_bucket{labels} {cumulative}")
            plain = _prom_labels(instrument.labels)
            lines.append(
                f"{name}_sum{plain} {_prom_value(instrument.sum)}"
            )
            lines.append(f"{name}_count{plain} {instrument.count}")
        else:
            labels = _prom_labels(instrument.labels)
            lines.append(
                f"{name}{labels} {_prom_value(instrument.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def window_to_prometheus(name: str, snapshot) -> str:
    """A :class:`~repro.obs.window.WindowSnapshot` as one histogram
    family in the text format (same shape as a cumulative histogram,
    but covering only the sliding window)."""
    prom = _prom_name(name)
    lines = [f"# TYPE {prom} histogram"]
    cumulative = 0
    for bound, count in zip(snapshot.buckets, snapshot.bucket_counts):
        cumulative += count
        lines.append(
            f'{prom}_bucket{{le="{_num(bound)}"}} {cumulative}'
        )
    cumulative += snapshot.bucket_counts[-1]
    lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{prom}_sum {_prom_value(snapshot.sum)}")
    lines.append(f"{prom}_count {snapshot.count}")
    return "\n".join(lines) + "\n"


def render_span_tree(tracer: Tracer) -> str:
    """Indented tree of finished spans, one trace after another."""
    spans = tracer.finished()
    if not spans:
        return "trace: (empty)"
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    known = {span.span_id for span in spans}

    def walk(span: Span, depth: int, out: List[str]) -> None:
        duration = span.duration
        timing = f"{duration:.6f}s" if duration is not None else "open"
        attrs = ""
        if span.attrs:
            inner = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f" [{inner}]"
        out.append(f"{'  ' * depth}{span.name} {timing}{attrs}")
        for child in sorted(
            by_parent.get(span.span_id, []), key=lambda s: s.start
        ):
            walk(child, depth + 1, out)

    # Roots: no parent, or the parent fell out of the ring buffer.
    roots = [
        span
        for span in spans
        if span.parent_id is None or span.parent_id not in known
    ]
    lines: List[str] = []
    for root in sorted(roots, key=lambda s: (s.trace_id, s.start)):
        walk(root, 0, lines)
    return "\n".join(lines)


def spans_to_json_lines(tracer: Tracer) -> str:
    """One JSON object per finished span, in end order."""
    lines = []
    for span in tracer.finished():
        record = {
            "type": "span",
            "name": span.name,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "start": _num(span.start),
            "end": _num(span.end_time),
            "attrs": {k: str(v) for k, v in sorted(span.attrs.items())},
        }
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)
