"""Sliding-window aggregation: rolling histograms over recent time.

A cumulative :class:`~repro.obs.metrics.Histogram` answers "since the
start of the run"; operators watching a 12-day HammerCloud campaign
need "over the last minute". :class:`RollingHistogram` keeps a ring of
bucketed sub-window slices and merges the live ones on read, so the
window slides in ``window/slices`` granularity with O(buckets) memory
per slice and no per-observation allocation.

Like every timing component in this codebase the clock is injected —
simulated runs roll their windows in simulated seconds, deterministic
per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS

__all__ = ["WindowSnapshot", "RollingHistogram"]


@dataclass(frozen=True)
class WindowSnapshot:
    """Merged view of the observations inside the sliding window."""

    count: int
    sum: float
    buckets: Tuple[float, ...]
    bucket_counts: Tuple[int, ...]

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile: the upper bound of the bucket
        the q-th observation falls in (conservative, Prometheus-style);
        None when the window is empty, ``inf`` in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return bound
        return float("inf")


class RollingHistogram:
    """Bucketed observations over a sliding time window.

    ``window`` seconds are covered by ``slices`` equal sub-windows;
    an observation lands in the slice of its timestamp and slices older
    than the window are zeroed lazily as time advances. Reads merge the
    live slices, so a snapshot is exact to slice granularity.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        window: float = 60.0,
        slices: int = 6,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if window <= 0:
            raise ValueError("window must be > 0 seconds")
        if slices < 1:
            raise ValueError("slices must be >= 1")
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.clock = clock
        self.window = float(window)
        self.slices = slices
        self.buckets = tuple(buckets)
        self._slice_span = self.window / slices
        #: ring of per-slice state: (slice_index, counts, count, sum)
        self._counts: List[List[int]] = [
            [0] * (len(self.buckets) + 1) for _ in range(slices)
        ]
        self._totals: List[int] = [0] * slices
        self._sums: List[float] = [0.0] * slices
        self._epochs: List[int] = [-1] * slices

    def _slot(self, now: float) -> int:
        """The ring slot for ``now``, zeroing any expired slice."""
        epoch = int(now / self._slice_span)
        slot = epoch % self.slices
        if self._epochs[slot] != epoch:
            self._counts[slot] = [0] * (len(self.buckets) + 1)
            self._totals[slot] = 0
            self._sums[slot] = 0.0
            self._epochs[slot] = epoch
        return slot

    def observe(self, value: float) -> None:
        """Record one observation at the current clock time."""
        value = float(value)
        slot = self._slot(self.clock())
        counts = self._counts[slot]
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._totals[slot] += 1
        self._sums[slot] += value

    def snapshot(self) -> WindowSnapshot:
        """Merge the slices still inside the window as of now."""
        now = self.clock()
        live_epoch = int(now / self._slice_span)
        merged = [0] * (len(self.buckets) + 1)
        count = 0
        total = 0.0
        for slot in range(self.slices):
            epoch = self._epochs[slot]
            if epoch < 0 or epoch <= live_epoch - self.slices:
                continue  # never used, or slid out of the window
            for index, bucket_count in enumerate(self._counts[slot]):
                merged[index] += bucket_count
            count += self._totals[slot]
            total += self._sums[slot]
        return WindowSnapshot(
            count=count,
            sum=total,
            buckets=self.buckets,
            bucket_counts=tuple(merged),
        )

    @property
    def count(self) -> int:
        return self.snapshot().count

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile over the current window."""
        return self.snapshot().quantile(q)
