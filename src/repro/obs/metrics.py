"""Metric instruments and the registry that owns them.

The paper's evaluation is entirely about *where time goes* (connection
setup, range round trips, replica recovery), so every layer of the
client and server records into a shared :class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing totals
  (``pool.acquire_total``, ``session.connect_total``);
* :class:`Gauge` — point-in-time values (``pool.idle_sessions``);
* :class:`Histogram` — distributions with bucketed counts and exact
  percentiles over a bounded sample (``session.connect_seconds``).

Each instrument *family* is keyed by name and fans out into labeled
series (``pool.acquire_total{outcome=hit}`` vs ``{outcome=miss}``), the
Prometheus data model in miniature. Registries are cheap dictionaries —
safe to create per-:class:`~repro.core.context.Context` and to leave
always-on in benchmarks.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Cap on the exact-sample reservoir a histogram keeps for percentiles.
_SAMPLE_CAP = 4096

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total for one labeled series.

    Updates are guarded by a per-instrument lock: writers on different
    pool shards (or dispatcher lanes) may increment the same series
    concurrently, and ``+=`` on a float is not atomic under threads.
    Reads stay lock-free — a float load is atomic enough for snapshots.
    """

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {format_series(self.name, self.labels)}={self._value}>"


class Gauge:
    """A point-in-time value that can move both ways.

    Like :class:`Counter`, mutation takes a per-instrument lock so
    concurrent ``add``/``set`` calls never lose updates; reads are
    lock-free.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {format_series(self.name, self.labels)}={self._value}>"


class Histogram:
    """A distribution: bucketed counts plus an exact bounded sample.

    Buckets follow the Prometheus convention — each bound counts
    observations ``<= bound`` with an implicit ``+Inf`` bucket at the
    end. Percentiles are exact while fewer than the sample cap (4096)
    values have been observed, then computed over the retained sample.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break
            else:
                self.bucket_counts[-1] += 1
            if len(self._sample) < _SAMPLE_CAP:
                self._sample.append(value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """q-th percentile (q in [0, 1]) over the retained sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._sample:
            return None
        ordered = sorted(self._sample)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def __repr__(self) -> str:
        return (
            f"<Histogram {format_series(self.name, self.labels)} "
            f"count={self.count} sum={self.sum:.6g}>"
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def format_series(name: str, labels: LabelKey) -> str:
    """Render ``name{k=v,...}`` for one labeled series."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Owns every instrument family; the per-Context composition point.

    ``registry.counter("pool.acquire_total", outcome="hit").inc()``
    creates the family and the labeled series on first use and returns
    the same instrument afterwards. Registering the same name with a
    different instrument kind raises — a name means one thing.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: name -> (kind, {label_key -> instrument})
        self._families: Dict[str, Tuple[str, Dict[LabelKey, object]]] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._series("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._series("gauge", name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        """The histogram series ``name{labels}`` (created on first use)."""
        return self._series("histogram", name, labels, buckets=buckets)

    def _series(self, kind, name, labels, buckets=None):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} is a {family[0]}, not a {kind}"
                )
            series = family[1].get(key)
            if series is None:
                if kind == "histogram":
                    series = Histogram(
                        name, key, buckets=buckets or DEFAULT_BUCKETS
                    )
                else:
                    series = _KINDS[kind](name, key)
                family[1][key] = series
            return series

    # -- read side ------------------------------------------------------------

    def value(self, name: str, **labels) -> Optional[float]:
        """Current value of a counter/gauge series; None if absent."""
        family = self._families.get(name)
        if family is None:
            return None
        series = family[1].get(_label_key(labels))
        if series is None or not hasattr(series, "value"):
            return None
        return series.value

    def get(self, name: str, **labels):
        """The instrument for ``name{labels}``; None if absent."""
        family = self._families.get(name)
        if family is None:
            return None
        return family[1].get(_label_key(labels))

    def series(self) -> Iterator[object]:
        """Every instrument, sorted by name then label key."""
        for name in sorted(self._families):
            _, by_label = self._families[name]
            for key in sorted(by_label):
                yield by_label[key]

    def snapshot(self) -> Dict[str, object]:
        """``series-string -> value`` (histograms map to (count, sum))."""
        out: Dict[str, object] = {}
        for instrument in self.series():
            key = format_series(instrument.name, instrument.labels)
            if instrument.kind == "histogram":
                out[key] = (instrument.count, instrument.sum)
            else:
                out[key] = instrument.value
        return out

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s series into this registry; returns self.

        The per-shard / per-worker aggregation primitive: each of
        ``other``'s labeled series is combined into the series with the
        *same* name and label set here (created on demand), so distinct
        label sets never collide. Counters and gauges add; histograms
        sum bucket counts exactly (same bucket bounds required), add
        ``count``/``sum``, widen min/max and concatenate the percentile
        samples up to the cap. A name registered with different kinds
        on the two sides raises ``ValueError``.
        """
        for instrument in other.series():
            labels = dict(instrument.labels)
            if instrument.kind == "counter":
                self.counter(instrument.name, **labels).inc(
                    instrument.value
                )
            elif instrument.kind == "gauge":
                self.gauge(instrument.name, **labels).add(
                    instrument.value
                )
            else:
                self._merge_histogram(instrument, labels)
        return self

    def _merge_histogram(self, theirs: Histogram, labels: Dict[str, str]):
        mine = self.histogram(
            theirs.name, buckets=theirs.buckets, **labels
        )
        if mine.buckets != theirs.buckets:
            raise ValueError(
                f"histogram {theirs.name!r}: bucket bounds differ "
                f"({mine.buckets} vs {theirs.buckets})"
            )
        with mine._lock:
            for index, bucket_count in enumerate(theirs.bucket_counts):
                mine.bucket_counts[index] += bucket_count
            mine.count += theirs.count
            mine.sum += theirs.sum
            if theirs.min is not None:
                mine.min = (
                    theirs.min
                    if mine.min is None
                    else min(mine.min, theirs.min)
                )
            if theirs.max is not None:
                mine.max = (
                    theirs.max
                    if mine.max is None
                    else max(mine.max, theirs.max)
                )
            room = _SAMPLE_CAP - len(mine._sample)
            if room > 0:
                mine._sample.extend(theirs._sample[:room])

    def reset(self) -> None:
        """Drop every family (used between benchmark cases)."""
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        return sum(len(f[1]) for f in self._families.values())
