"""Basket/page compression codec (ROOT-style framed zlib).

ROOT stores each basket as a small header plus a zlib payload; we mirror
that: ``b"ZL" | method u8 | uncompressed u32 | compressed u32 | data``.
The header makes truncation and corruption detectable, which the
failure-injection tests rely on.

Two methods are spoken: ``METHOD_ZLIB`` (levels 1-9) and
``METHOD_STORE`` (level 0 — the payload verbatim, for data that does
not compress). The v2 page/cluster format reuses this frame per page,
so per-column compression is just a per-column level.
"""

from __future__ import annotations

import struct
import zlib
from repro.errors import RootIOError

__all__ = ["compress_basket", "decompress_basket", "basket_overhead"]

MAGIC = b"ZL"
METHOD_STORE = 0
METHOD_ZLIB = 1
HEADER = struct.Struct(">2sBII")


def basket_overhead() -> int:
    """Bytes of framing added to each compressed basket."""
    return HEADER.size


def compress_basket(data: bytes, level: int = 1) -> bytes:
    """Frame and compress one basket payload.

    Level 1 mirrors ROOT's default fast setting; level 0 stores the
    payload verbatim (no zlib stream at all).
    """
    if not 0 <= level <= 9:
        raise ValueError(f"compression level {level} not in 0..9")
    if level == 0:
        return HEADER.pack(MAGIC, METHOD_STORE, len(data), len(data)) + data
    packed = zlib.compress(data, level)
    return HEADER.pack(MAGIC, METHOD_ZLIB, len(data), len(packed)) + packed


def decompress_basket(blob: bytes) -> bytes:
    """Decode one framed basket; raises :class:`RootIOError` on damage."""
    if len(blob) < HEADER.size:
        raise RootIOError(f"basket too short: {len(blob)} bytes")
    magic, method, uncompressed, compressed = HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise RootIOError(f"bad basket magic {magic!r}")
    if method not in (METHOD_STORE, METHOD_ZLIB):
        raise RootIOError(f"unknown compression method {method}")
    payload = blob[HEADER.size : HEADER.size + compressed]
    if len(payload) != compressed:
        raise RootIOError(
            f"truncated basket: have {len(payload)}, "
            f"header says {compressed}"
        )
    if method == METHOD_STORE:
        if compressed != uncompressed:
            raise RootIOError(
                f"stored basket length mismatch: payload {compressed}, "
                f"header says {uncompressed}"
            )
        return bytes(payload)
    try:
        data = zlib.decompress(payload)
    except zlib.error as exc:
        raise RootIOError(f"corrupt basket payload: {exc}") from exc
    if len(data) != uncompressed:
        raise RootIOError(
            f"basket inflated to {len(data)}, header says {uncompressed}"
        )
    return data
