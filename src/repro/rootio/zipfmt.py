"""Basket compression codec (ROOT-style framed zlib).

ROOT stores each basket as a small header plus a zlib payload; we mirror
that: ``b"ZL" | method u8 | uncompressed u32 | compressed u32 | data``.
The header makes truncation and corruption detectable, which the
failure-injection tests rely on.
"""

from __future__ import annotations

import struct
import zlib
from repro.errors import RootIOError

__all__ = ["compress_basket", "decompress_basket", "basket_overhead"]

MAGIC = b"ZL"
METHOD_ZLIB = 1
HEADER = struct.Struct(">2sBII")


def basket_overhead() -> int:
    """Bytes of framing added to each compressed basket."""
    return HEADER.size


def compress_basket(data: bytes, level: int = 1) -> bytes:
    """Frame and compress one basket payload.

    Level 1 mirrors ROOT's default fast setting.
    """
    packed = zlib.compress(data, level)
    return HEADER.pack(MAGIC, METHOD_ZLIB, len(data), len(packed)) + packed


def decompress_basket(blob: bytes) -> bytes:
    """Decode one framed basket; raises :class:`RootIOError` on damage."""
    if len(blob) < HEADER.size:
        raise RootIOError(f"basket too short: {len(blob)} bytes")
    magic, method, uncompressed, compressed = HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise RootIOError(f"bad basket magic {magic!r}")
    if method != METHOD_ZLIB:
        raise RootIOError(f"unknown compression method {method}")
    payload = blob[HEADER.size : HEADER.size + compressed]
    if len(payload) != compressed:
        raise RootIOError(
            f"truncated basket: have {len(payload)}, "
            f"header says {compressed}"
        )
    try:
        data = zlib.decompress(payload)
    except zlib.error as exc:
        raise RootIOError(f"corrupt basket payload: {exc}") from exc
    if len(data) != uncompressed:
        raise RootIOError(
            f"basket inflated to {len(data)}, header says {uncompressed}"
        )
    return data
