"""TTreeCache: cluster prefetch feeding vectored reads (paper Fig. 3).

ROOT's TTreeCache learns which branches an analysis touches, then
prefetches *all* their baskets for the next window of entries in one
vectored request. That request is what davix executes as a single HTTP
multi-range query — the mechanism the paper credits for "drastically
reducing the number of remote network I/O operations".

This implementation mirrors the behaviourally relevant parts:

* a **learning phase**: the first ``learn_entries`` entries fetch each
  basket individually (many small reads — the pattern HTTP suffers
  from without this optimisation);
* after learning, entry windows of ``entries_per_cluster`` are filled
  with one ``fetch_vec`` call each;
* an optional CPU model: each refill can charge decompression time to
  the simulated clock (``Sleep``), so benchmark timing includes the
  client-side cost the paper's job pays.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.concurrency import Sleep
from repro.errors import RootIOError
from repro.rootio.treefile import TreeFileReader
from repro.rootio.zipfmt import decompress_basket

__all__ = ["TTreeCache"]


class TTreeCache:
    """Cluster-granular read cache over a :class:`TreeFileReader`."""

    def __init__(
        self,
        reader: TreeFileReader,
        branch_names: Sequence[str] = (),
        entries_per_cluster: int = 100,
        learn_entries: int = 0,
        decode: bool = True,
        decompress_bandwidth: Optional[float] = None,
    ):
        if reader.meta is None:
            raise RootIOError("reader must be open()ed before caching")
        if entries_per_cluster < 1:
            raise ValueError("entries_per_cluster must be >= 1")
        if learn_entries < 0:
            raise ValueError("learn_entries must be >= 0")
        self.reader = reader
        self.meta = reader.meta
        self.branch_names = list(branch_names) or self.meta.branch_names
        self.entries_per_cluster = entries_per_cluster
        self.learn_entries = min(learn_entries, self.meta.n_entries)
        #: Decode basket payloads (off for timing-only benchmark runs
        #: against synthetic content that is not real zlib data).
        self.decode = decode
        #: When set, every refill sleeps uncompressed_bytes/bandwidth —
        #: the decompression CPU model (bytes/second).
        self.decompress_bandwidth = decompress_bandwidth

        self._window: Tuple[int, int] = (0, 0)
        self._baskets: Dict[Tuple[str, int], bytes] = {}
        self.stats = {
            "refills": 0,
            "vector_reads": 0,
            "single_reads": 0,
            "bytes_fetched": 0,
            "bytes_decompressed": 0,
        }

    # -- public ----------------------------------------------------------------

    def read_entry(self, entry: int):
        """Effect sub-op: {branch: record bytes} for one entry.

        Record bytes are ``None`` when ``decode`` is off.
        """
        if not 0 <= entry < self.meta.n_entries:
            raise RootIOError(f"entry {entry} out of range")
        if not self._window[0] <= entry < self._window[1]:
            yield from self._refill(entry)
        out = {}
        for name in self.branch_names:
            branch = self.meta.branch(name)
            basket = branch.basket_for_entry(entry)
            payload = self._baskets[(name, basket.first_entry)]
            if payload is None:
                out[name] = None
            else:
                index = entry - basket.first_entry
                out[name] = payload[
                    index * branch.event_size : (index + 1)
                    * branch.event_size
                ]
        return out

    # -- refill machinery ----------------------------------------------------------

    def _refill(self, entry: int):
        start = entry
        stop = min(entry + self.entries_per_cluster, self.meta.n_entries)
        learning = entry < self.learn_entries
        if learning:
            # Learning phase reads one basket at a time, per branch —
            # the un-optimised access pattern.
            stop = min(stop, self.learn_entries)
            yield from self._refill_single(start, stop)
        else:
            yield from self._refill_vectored(start, stop)
        self._window = (start, stop)
        self.stats["refills"] += 1
        if self.decompress_bandwidth:
            cost = self._last_uncompressed / self.decompress_bandwidth
            if cost > 0:
                yield Sleep(cost)

    def _needed_baskets(self, start: int, stop: int):
        needed = []
        for name in self.branch_names:
            for basket in self.meta.branch(name).baskets_for_entries(
                start, stop
            ):
                needed.append((name, basket))
        return needed

    def _refill_vectored(self, start: int, stop: int):
        needed = self._needed_baskets(start, stop)
        spans = sorted({basket.span for _, basket in needed})
        blobs = yield from self.reader.fetcher.fetch_vec(spans)
        blob_by_span = dict(zip(spans, blobs))
        self.stats["vector_reads"] += 1
        self._install(needed, blob_by_span)

    def _refill_single(self, start: int, stop: int):
        needed = self._needed_baskets(start, stop)
        blob_by_span = {}
        for _, basket in needed:
            if basket.span in blob_by_span:
                continue
            blob = yield from self.reader.fetcher.fetch(*basket.span)
            blob_by_span[basket.span] = blob
            self.stats["single_reads"] += 1
        self._install(needed, blob_by_span)

    def _install(self, needed, blob_by_span) -> None:
        self._baskets.clear()
        uncompressed = 0
        for name, basket in needed:
            blob = blob_by_span[basket.span]
            self.stats["bytes_fetched"] += len(blob)
            uncompressed += basket.uncompressed
            if self.decode:
                self._baskets[(name, basket.first_entry)] = (
                    decompress_basket(blob)
                )
            else:
                self._baskets[(name, basket.first_entry)] = None
        self._last_uncompressed = uncompressed
        self.stats["bytes_decompressed"] += uncompressed
