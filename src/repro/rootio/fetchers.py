"""Remote fetchers: bind tree reading to davix or XRootD transports.

A *fetcher* exposes three effect sub-ops (``size``, ``fetch``,
``fetch_vec``); :class:`~repro.rootio.treefile.TreeFileReader` and
:class:`~repro.rootio.treecache.TTreeCache` consume whichever transport
is plugged in — exactly how ROOT's TFile plugs TDavixFile or TXNetFile
underneath the same analysis code.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.context import Context, RequestParams
from repro.core.file import DavFile
from repro.xrootd.client import XrdClient, XrdFile
from repro.xrootd.readahead import ReadAheadWindow

__all__ = ["DavixFetcher", "XrootdFetcher"]


class DavixFetcher:
    """Tree fetcher over the davix HTTP client (TDavixFile).

    With the transfer engine armed (``read_ahead=True`` or
    ``params.transfer.read_ahead``), feed the upcoming access sequence
    through :meth:`plan` and the file pipelines speculative
    multi-range fetches ahead of consumption — the HTTP counterpart
    of :class:`XrootdFetcher`'s sliding window.
    """

    def __init__(
        self,
        context: Context,
        url,
        params: Optional[RequestParams] = None,
        read_ahead: Optional[bool] = None,
    ):
        self.file = DavFile(context, url, params, read_ahead=read_ahead)
        self.reads = 0
        self.bytes_fetched = 0

    def plan(self, segments) -> None:
        """Announce the upcoming access sequence to the read-ahead.

        A no-op unless the transfer engine is armed, so callers can
        feed the plan unconditionally.
        """
        if self.file.read_ahead_enabled:
            self.file.prefetch(segments)

    def drain(self):
        """Effect sub-op: join outstanding speculative fetches."""
        yield from self.file.drain()

    def size(self):
        """Effect sub-op: remote file size (HEAD)."""
        stat = yield from self.file.stat()
        return stat.size

    def fetch(self, offset: int, length: int):
        """Effect sub-op: one HTTP range read."""
        self.reads += 1
        data = yield from self.file.pread(offset, length)
        self.bytes_fetched += len(data)
        return data

    def fetch_vec(self, reads: Sequence):
        """Effect sub-op: one (or few) HTTP multi-range reads."""
        self.reads += 1
        chunks = yield from self.file.pread_vec(list(reads))
        self.bytes_fetched += sum(len(chunk) for chunk in chunks)
        return chunks


class XrootdFetcher:
    """Tree fetcher over the XRootD client (TXNetFile).

    With ``window_bytes`` set, single fetches go through the
    sliding-window read-ahead; feed it the access plan with
    :meth:`plan`.
    """

    def __init__(
        self,
        client: XrdClient,
        file: XrdFile,
        window_bytes: Optional[int] = None,
        request_overhead: float = 0.0,
    ):
        self.client = client
        self.file = file
        self.window = (
            ReadAheadWindow(client, file, window_bytes)
            if window_bytes
            else None
        )
        #: Client-side scheduling cost charged per remote request.
        self.request_overhead = request_overhead
        self.reads = 0
        self.bytes_fetched = 0

    def plan(self, segments) -> None:
        """Announce the upcoming access sequence to the read-ahead."""
        if self.window is not None:
            self.window.extend_plan(segments)

    def size(self):
        """Effect sub-op: remote file size (from open)."""
        return self.file.size
        yield  # pragma: no cover - makes this a generator

    def fetch(self, offset: int, length: int):
        """Effect sub-op: one read (through the window when enabled)."""
        self.reads += 1
        if self.request_overhead > 0:
            from repro.concurrency import Sleep

            yield Sleep(self.request_overhead)
        if self.window is not None:
            data = yield from self.window.read(offset, length)
        else:
            data = yield from self.client.read(self.file, offset, length)
        self.bytes_fetched += len(data)
        return data

    def fetch_vec(self, reads: Sequence):
        """Effect sub-op: a vectored read.

        Without a read-ahead window this is one kXR_readv request. With
        the window enabled, each segment goes through the sliding
        window instead: planned segments are already in flight (issued
        asynchronously during earlier compute), so the vector resolves
        with few or no fresh round trips.
        """
        self.reads += 1
        if self.request_overhead > 0:
            from repro.concurrency import Sleep

            yield Sleep(self.request_overhead)
        if self.window is not None:
            chunks = []
            for offset, length in reads:
                chunk = yield from self.window.read(offset, length)
                chunks.append(chunk)
        else:
            chunks = yield from self.client.readv(self.file, list(reads))
        self.bytes_fetched += sum(len(chunk) for chunk in chunks)
        return chunks
