"""Synthetic HEP dataset generation.

The paper's workload: "a High energy analysis job ... reading a fraction
or the totality of around 12000 particles events from a 700 MBytes root
file". This module builds that file two ways:

* :func:`generate_tree_bytes` — a real, byte-exact tree file
  (compressed baskets, readable end-to-end). Used by tests and
  examples at small scale.
* :func:`generate_tree_layout` — only the :class:`TreeMeta` (offsets
  and sizes), statistically matching what the materialised file would
  look like. Used by the benchmarks: the server hosts cheap synthetic
  content of the right size, so a 700 MB dataset costs no RAM, while
  every byte range and request count stays realistic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.rootio.ntuple import (
    DEFAULT_CLUSTER_ENTRIES,
    DEFAULT_PAGE_BYTES,
    ClusterInfo,
    ColumnMeta,
    NTupleMeta,
    PageInfo,
    write_ntuple_file,
)
from repro.rootio.ntuple import HEADER as NTUPLE_HEADER
from repro.rootio.tree import BasketInfo, BranchMeta, TreeMeta
from repro.rootio.treefile import HEADER, write_tree_file
from repro.rootio.zipfmt import basket_overhead

__all__ = [
    "BranchSpec",
    "DatasetSpec",
    "paper_dataset",
    "generate_tree_bytes",
    "generate_tree_layout",
    "generate_ntuple_bytes",
    "generate_ntuple_layout",
]


@dataclass(frozen=True)
class BranchSpec:
    """One branch's statistical shape."""

    name: str
    #: Uncompressed bytes per event.
    event_size: int
    #: Expected compressed/uncompressed ratio in (0, 1].
    compress_ratio: float = 0.5

    def __post_init__(self):
        if self.event_size < 1:
            raise ValueError("event_size must be >= 1")
        if not 0.0 < self.compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be in (0, 1]")


@dataclass(frozen=True)
class DatasetSpec:
    """A whole synthetic dataset (tree) description."""

    name: str
    n_entries: int
    branches: Tuple[BranchSpec, ...]
    basket_entries: int = 100
    seed: int = 2014

    def __post_init__(self):
        if self.n_entries < 1:
            raise ValueError("n_entries must be >= 1")
        if not self.branches:
            raise ValueError("at least one branch required")

    @property
    def uncompressed_event_size(self) -> int:
        return sum(branch.event_size for branch in self.branches)

    @property
    def approx_compressed_size(self) -> int:
        """Rough compressed file size (what the paper quotes: 700 MB)."""
        total = 0
        for branch in self.branches:
            total += int(
                branch.event_size * self.n_entries * branch.compress_ratio
            )
        return total


def paper_dataset(scale: float = 1.0, n_branches: int = 10) -> DatasetSpec:
    """The paper's dataset: ~12 000 events, ~700 MB compressed.

    ``scale`` shrinks the per-event byte volume (not the event count,
    so request-count-driven effects are preserved at any scale).
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    # 700 MB compressed / 12 000 events / 0.5 ratio ~= 116 KiB/event raw.
    per_branch = max(1, int(11_667 * scale))
    branches = tuple(
        BranchSpec(
            name=f"branch{i:02d}",
            event_size=per_branch,
            compress_ratio=0.5,
        )
        for i in range(n_branches)
    )
    return DatasetSpec(
        name="hep_events",
        n_entries=12_000,
        branches=branches,
        basket_entries=100,
    )


def _branch_payload(
    spec: BranchSpec, n_entries: int, rng: np.random.Generator
) -> bytes:
    """Event records whose zlib ratio approximates ``compress_ratio``.

    Mix of incompressible (random) and fully compressible (zero) bytes:
    a fraction ``r`` of random bytes compresses to ~r of the original.
    """
    total = spec.event_size * n_entries
    random_bytes = int(total * spec.compress_ratio)
    payload = np.zeros(total, dtype=np.uint8)
    payload[:random_bytes] = rng.integers(
        0, 256, size=random_bytes, dtype=np.uint8
    )
    # Shuffle deterministically at coarse granularity (per-KiB blocks)
    # so zeros and noise mix and every basket compresses alike. Only
    # the full blocks are permuted; a partial tail stays in place.
    block = 1024
    n_full = total // block
    if n_full > 1:
        head = payload[: n_full * block].reshape(n_full, block)
        payload[: n_full * block] = head[rng.permutation(n_full)].reshape(-1)
    return payload.tobytes()


def generate_tree_bytes(spec: DatasetSpec) -> bytes:
    """Materialise the dataset as a real tree file (bytes)."""
    rng = np.random.default_rng(spec.seed)
    arrays: Dict[str, bytes] = {
        branch.name: _branch_payload(branch, spec.n_entries, rng)
        for branch in spec.branches
    }
    return write_tree_file(
        spec.name,
        arrays,
        n_entries=spec.n_entries,
        basket_entries=spec.basket_entries,
    )


def generate_ntuple_bytes(
    spec: DatasetSpec,
    cluster_entries: int = DEFAULT_CLUSTER_ENTRIES,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    compression=1,
) -> bytes:
    """Materialise the dataset as a real v2 ntuple file (bytes).

    Uses the same seeded payloads as :func:`generate_tree_bytes`, so
    the decoded columns of both formats are byte-identical — the
    invariant the format-equivalence tests assert.
    """
    rng = np.random.default_rng(spec.seed)
    arrays: Dict[str, bytes] = {
        branch.name: _branch_payload(branch, spec.n_entries, rng)
        for branch in spec.branches
    }
    return write_ntuple_file(
        spec.name,
        arrays,
        n_entries=spec.n_entries,
        cluster_entries=cluster_entries,
        page_bytes=page_bytes,
        compression=compression,
    )


def generate_ntuple_layout(
    spec: DatasetSpec,
    cluster_entries: int = DEFAULT_CLUSTER_ENTRIES,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> NTupleMeta:
    """Build only the v2 metadata a materialised file would have.

    Cluster-major page layout with the same +-10 % compressed-size
    jitter model as :func:`generate_tree_layout`; checksums are zero
    (layout-only runs never decode).
    """
    rng = random.Random(spec.seed)
    cursor = NTUPLE_HEADER.size
    overhead = basket_overhead()
    columns = {
        branch_spec.name: ColumnMeta(
            name=branch_spec.name, event_size=branch_spec.event_size
        )
        for branch_spec in spec.branches
    }
    clusters: List[ClusterInfo] = []
    for first in range(0, spec.n_entries, cluster_entries):
        count = min(cluster_entries, spec.n_entries - first)
        clusters.append(ClusterInfo(first_entry=first, n_entries=count))
        for branch_spec in spec.branches:
            column = columns[branch_spec.name]
            page_entries = max(1, page_bytes // branch_spec.event_size)
            for page_first in range(first, first + count, page_entries):
                page_count = min(
                    page_entries, first + count - page_first
                )
                uncompressed = page_count * branch_spec.event_size
                jitter = rng.uniform(0.9, 1.1)
                nbytes = overhead + max(
                    8,
                    int(
                        uncompressed
                        * branch_spec.compress_ratio
                        * jitter
                    ),
                )
                column.pages.append(
                    PageInfo(
                        offset=cursor,
                        nbytes=nbytes,
                        first_entry=page_first,
                        n_entries=page_count,
                        uncompressed=uncompressed,
                        checksum=0,
                    )
                )
                cursor += nbytes
    meta = NTupleMeta(
        name=spec.name,
        n_entries=spec.n_entries,
        cluster_list=clusters,
        columns=[columns[b.name] for b in spec.branches],
        file_size=cursor,
    )
    meta.validate()
    return meta


def generate_tree_layout(spec: DatasetSpec) -> TreeMeta:
    """Build only the metadata a materialised file would have.

    Compressed basket sizes are drawn around
    ``event_size * n * compress_ratio`` with +-10 % jitter, laid out
    contiguously after the header — statistically faithful without
    generating a single payload byte.
    """
    rng = random.Random(spec.seed)
    cursor = HEADER.size
    branches: List[BranchMeta] = []
    overhead = basket_overhead()
    for branch_spec in spec.branches:
        branch = BranchMeta(
            name=branch_spec.name, event_size=branch_spec.event_size
        )
        for first in range(0, spec.n_entries, spec.basket_entries):
            count = min(spec.basket_entries, spec.n_entries - first)
            uncompressed = count * branch_spec.event_size
            jitter = rng.uniform(0.9, 1.1)
            nbytes = overhead + max(
                16, int(uncompressed * branch_spec.compress_ratio * jitter)
            )
            branch.baskets.append(
                BasketInfo(
                    offset=cursor,
                    nbytes=nbytes,
                    first_entry=first,
                    n_entries=count,
                    uncompressed=uncompressed,
                )
            )
            cursor += nbytes
        branches.append(branch)
    meta = TreeMeta(
        name=spec.name,
        n_entries=spec.n_entries,
        branches=branches,
        file_size=cursor,
    )
    meta.validate()
    return meta
