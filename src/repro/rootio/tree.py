"""Tree metadata model: branches, baskets, entry->byte-range mapping.

A *tree* holds ``n_entries`` events split across *branches* (columns).
Each branch's values are stored in compressed *baskets* of
``basket_entries`` events. The metadata is what TTreeCache needs to turn
"entries [a, b) of branches X, Y" into byte ranges — the input of the
paper's vectored I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import RootIOError

__all__ = ["BasketInfo", "BranchMeta", "TreeMeta"]


@dataclass(frozen=True)
class BasketInfo:
    """One stored basket: where it lives and what it holds."""

    offset: int  # byte offset in the file
    nbytes: int  # compressed size on disk (incl. framing)
    first_entry: int
    n_entries: int
    uncompressed: int

    @property
    def end_entry(self) -> int:
        return self.first_entry + self.n_entries

    @property
    def span(self) -> Tuple[int, int]:
        """(offset, nbytes) — the read needed to load this basket."""
        return (self.offset, self.nbytes)


@dataclass
class BranchMeta:
    """One branch (column): fixed-size records in ordered baskets."""

    name: str
    event_size: int  # bytes per entry, uncompressed
    baskets: List[BasketInfo] = field(default_factory=list)

    def basket_for_entry(self, entry: int) -> BasketInfo:
        """The basket holding ``entry`` (binary search)."""
        low, high = 0, len(self.baskets)
        while low < high:
            mid = (low + high) // 2
            basket = self.baskets[mid]
            if entry < basket.first_entry:
                high = mid
            elif entry >= basket.end_entry:
                low = mid + 1
            else:
                return basket
        raise RootIOError(
            f"branch {self.name}: no basket for entry {entry}"
        )

    def baskets_for_entries(self, start: int, stop: int) -> List[BasketInfo]:
        """Baskets covering entries [start, stop)."""
        if start >= stop:
            return []
        return [
            basket
            for basket in self.baskets
            if basket.end_entry > start and basket.first_entry < stop
        ]

    @property
    def compressed_bytes(self) -> int:
        return sum(basket.nbytes for basket in self.baskets)

    @property
    def uncompressed_bytes(self) -> int:
        return sum(basket.uncompressed for basket in self.baskets)


@dataclass
class TreeMeta:
    """The full tree: entry count, branches, file footprint."""

    name: str
    n_entries: int
    branches: List[BranchMeta]
    file_size: int = 0

    def branch(self, name: str) -> BranchMeta:
        for branch in self.branches:
            if branch.name == name:
                return branch
        raise RootIOError(f"no branch named {name!r}")

    @property
    def branch_names(self) -> List[str]:
        return [branch.name for branch in self.branches]

    @property
    def compressed_bytes(self) -> int:
        return sum(branch.compressed_bytes for branch in self.branches)

    def segments_for_entries(
        self,
        start: int,
        stop: int,
        branch_names: Sequence[str] = (),
    ) -> List[Tuple[int, int]]:
        """Byte ranges covering entries [start, stop).

        Deduplicated and sorted by offset; this list is exactly what a
        vectored read (or a read-ahead plan) consumes.
        """
        names = branch_names or self.branch_names
        spans = set()
        for name in names:
            for basket in self.branch(name).baskets_for_entries(start, stop):
                spans.add(basket.span)
        return sorted(spans)

    def clusters(self, entries_per_cluster: int) -> Iterator[Tuple[int, int]]:
        """Yield (start, stop) entry windows of the given size."""
        if entries_per_cluster < 1:
            raise ValueError("entries_per_cluster must be >= 1")
        for start in range(0, self.n_entries, entries_per_cluster):
            yield (start, min(start + entries_per_cluster, self.n_entries))

    def validate(self) -> None:
        """Structural sanity checks (contiguous entries, sane sizes)."""
        if self.n_entries < 0:
            raise RootIOError("negative entry count")
        for branch in self.branches:
            expected = 0
            for basket in branch.baskets:
                if basket.first_entry != expected:
                    raise RootIOError(
                        f"branch {branch.name}: basket at entry "
                        f"{basket.first_entry}, expected {expected}"
                    )
                if basket.n_entries < 1:
                    raise RootIOError(
                        f"branch {branch.name}: empty basket"
                    )
                if basket.uncompressed != (
                    basket.n_entries * branch.event_size
                ):
                    raise RootIOError(
                        f"branch {branch.name}: uncompressed size "
                        f"mismatch at entry {basket.first_entry}"
                    )
                expected = basket.end_entry
            if expected != self.n_entries:
                raise RootIOError(
                    f"branch {branch.name}: covers {expected} entries, "
                    f"tree has {self.n_entries}"
                )
