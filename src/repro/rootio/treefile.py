"""Tree-file container format: writer and reader.

Layout::

    magic "RTREE001" | index_offset u64 | index_len u64 |
    basket blobs ... |
    JSON index (tree + branch + basket metadata)

The JSON index plays the role of ROOT's streamed TKey directory: one
metadata read up front, then purely positional basket reads — the access
pattern that makes HTTP range requests viable.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence

from repro.errors import RootIOError
from repro.rootio.tree import BasketInfo, BranchMeta, TreeMeta
from repro.rootio.zipfmt import compress_basket, decompress_basket

__all__ = ["MAGIC", "HEADER", "write_tree_file", "TreeFileReader", "LocalFetcher"]

MAGIC = b"RTREE001"
HEADER = struct.Struct(">8sQQ")


def write_tree_file(
    name: str,
    branch_arrays: Dict[str, bytes],
    n_entries: int,
    basket_entries: int = 100,
    compression_level: int = 1,
) -> bytes:
    """Serialise branch data into a tree file (returned as bytes).

    ``branch_arrays`` maps branch name to its concatenated fixed-size
    event records (``len == n_entries * event_size``).
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if basket_entries < 1:
        raise ValueError("basket_entries must be >= 1")

    body = bytearray()
    cursor = HEADER.size
    branches: List[BranchMeta] = []
    for branch_name, data in branch_arrays.items():
        if len(data) % n_entries != 0:
            raise RootIOError(
                f"branch {branch_name}: {len(data)} bytes does not "
                f"divide into {n_entries} entries"
            )
        event_size = len(data) // n_entries
        branch = BranchMeta(name=branch_name, event_size=event_size)
        for first in range(0, n_entries, basket_entries):
            count = min(basket_entries, n_entries - first)
            raw = data[
                first * event_size : (first + count) * event_size
            ]
            blob = compress_basket(raw, level=compression_level)
            branch.baskets.append(
                BasketInfo(
                    offset=cursor,
                    nbytes=len(blob),
                    first_entry=first,
                    n_entries=count,
                    uncompressed=len(raw),
                )
            )
            body += blob
            cursor += len(blob)
        branches.append(branch)

    meta = TreeMeta(name=name, n_entries=n_entries, branches=branches)
    index = json.dumps(_meta_to_json(meta)).encode("utf-8")
    header = HEADER.pack(MAGIC, cursor, len(index))
    blob = header + bytes(body) + index
    meta.file_size = len(blob)
    return blob


def _meta_to_json(meta: TreeMeta) -> dict:
    return {
        "name": meta.name,
        "n_entries": meta.n_entries,
        "branches": [
            {
                "name": branch.name,
                "event_size": branch.event_size,
                "baskets": [
                    [b.offset, b.nbytes, b.first_entry, b.n_entries,
                     b.uncompressed]
                    for b in branch.baskets
                ],
            }
            for branch in meta.branches
        ],
    }


def meta_from_json(doc: dict, file_size: int = 0) -> TreeMeta:
    """Rebuild a TreeMeta from its JSON index."""
    try:
        branches = [
            BranchMeta(
                name=raw["name"],
                event_size=raw["event_size"],
                baskets=[
                    BasketInfo(
                        offset=o, nbytes=n, first_entry=f,
                        n_entries=c, uncompressed=u,
                    )
                    for o, n, f, c, u in raw["baskets"]
                ],
            )
            for raw in doc["branches"]
        ]
        meta = TreeMeta(
            name=doc["name"],
            n_entries=doc["n_entries"],
            branches=branches,
            file_size=file_size,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RootIOError(f"malformed tree index: {exc}") from exc
    meta.validate()
    return meta


class LocalFetcher:
    """Fetcher over in-memory bytes (the trivial transport).

    Fetchers expose effect sub-ops so remote fetchers (davix, xrootd)
    are drop-in replacements; this one never yields.
    """

    def __init__(self, data: bytes):
        self.data = data
        self.reads = 0
        self.bytes_fetched = 0

    def size(self):
        """Effect sub-op: total size."""
        return len(self.data)
        yield  # pragma: no cover - makes this a generator

    def fetch(self, offset: int, length: int):
        """Effect sub-op: one positional read."""
        self.reads += 1
        self.bytes_fetched += length
        return self.data[offset : offset + length]
        yield  # pragma: no cover - makes this a generator

    def fetch_vec(self, reads: Sequence):
        """Effect sub-op: vectored read."""
        self.reads += 1
        out = []
        for offset, length in reads:
            self.bytes_fetched += length
            out.append(self.data[offset : offset + length])
        return out
        yield  # pragma: no cover - makes this a generator


class TreeFileReader:
    """Opens a tree file through any fetcher and reads entries."""

    def __init__(self, fetcher):
        self.fetcher = fetcher
        self.meta: Optional[TreeMeta] = None

    def open(self):
        """Effect sub-op: read header + index, build the metadata."""
        head = yield from self.fetcher.fetch(0, HEADER.size)
        if len(head) != HEADER.size:
            raise RootIOError("file too short for a tree header")
        magic, index_offset, index_len = HEADER.unpack(head)
        if magic != MAGIC:
            raise RootIOError(f"bad tree magic {magic!r}")
        raw_index = yield from self.fetcher.fetch(index_offset, index_len)
        if len(raw_index) != index_len:
            raise RootIOError("truncated tree index")
        try:
            doc = json.loads(raw_index.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RootIOError(f"unreadable tree index: {exc}") from exc
        self.meta = meta_from_json(
            doc, file_size=index_offset + index_len
        )
        return self.meta

    def read_basket(self, basket: BasketInfo):
        """Effect sub-op: fetch + decompress one basket."""
        blob = yield from self.fetcher.fetch(basket.offset, basket.nbytes)
        return decompress_basket(blob)

    def read_entries(
        self,
        start: int,
        stop: int,
        branch_names: Sequence[str] = (),
    ):
        """Effect sub-op: {branch: concatenated records of [start, stop)}.

        Fetches every needed basket with **one vectored read**, then
        decompresses and slices.
        """
        if self.meta is None:
            raise RootIOError("open() the reader first")
        names = list(branch_names) or self.meta.branch_names
        wanted = {}
        spans = []
        for name in names:
            baskets = self.meta.branch(name).baskets_for_entries(start, stop)
            wanted[name] = baskets
            spans.extend(basket.span for basket in baskets)
        unique_spans = sorted(set(spans))
        blobs = yield from self.fetcher.fetch_vec(unique_spans)
        blob_by_span = dict(zip(unique_spans, blobs))

        out: Dict[str, bytes] = {}
        for name in names:
            branch = self.meta.branch(name)
            pieces = []
            for basket in wanted[name]:
                raw = decompress_basket(blob_by_span[basket.span])
                lo = max(start, basket.first_entry) - basket.first_entry
                hi = min(stop, basket.end_entry) - basket.first_entry
                pieces.append(
                    raw[lo * branch.event_size : hi * branch.event_size]
                )
            out[name] = b"".join(pieces)
        return out
