"""ClusterScan: parallel per-cluster decode lanes for the v2 format.

The v1 :class:`~repro.rootio.treecache.TTreeCache` refills one entry
window at a time: fetch, decompress, serve, repeat — fetch latency and
decode CPU strictly alternate. The v2 layout makes clusters
independently decodable, so this cache refills ``lanes`` clusters at
once over :func:`~repro.concurrency.bounded_gather`: each lane fetches
its cluster's page spans (one coalesced multi-range request through
whatever fetcher is plugged in — page cache, transfer engine and
retries compose underneath), adler32-verifies every page, decodes, and
charges its decompression CPU concurrently with the other lanes'
network waits. On a 300 ms WAN path that overlap is most of the win.

Exposes the same ``read_entry`` surface as TTreeCache, so the analysis
event loop is format-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.concurrency import Sleep, bounded_gather
from repro.errors import PageChecksumError, RootIOError
from repro.rootio.ntuple import NTupleReader, decode_page

__all__ = ["ClusterScan"]


class ClusterScan:
    """Cluster-granular read cache with parallel decode lanes."""

    def __init__(
        self,
        reader: NTupleReader,
        branch_names: Sequence[str] = (),
        lanes: int = 2,
        decode: bool = True,
        decompress_bandwidth: Optional[float] = None,
        metrics=None,
        clock=None,
    ):
        if reader.meta is None:
            raise RootIOError("reader must be open()ed before scanning")
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.reader = reader
        self.meta = reader.meta
        self.branch_names = list(branch_names) or self.meta.column_names
        self.columns = [
            self.meta.column(name) for name in self.branch_names
        ]
        self.lanes = lanes
        #: Decode page payloads (off for layout-only timing runs
        #: against synthetic content that is not real page data).
        self.decode = decode
        #: When set, every cluster job sleeps uncompressed/bandwidth —
        #: the per-lane decompression CPU model (bytes/second).
        self.decompress_bandwidth = decompress_bandwidth
        self.metrics = metrics
        self.clock = clock
        self._stop = self.meta.n_entries
        self._window: Tuple[int, int] = (0, 0)
        #: (column name, cluster index) -> decoded cluster column bytes
        #: (None with decode off).
        self._buffers: Dict[Tuple[str, int], Optional[bytes]] = {}
        self.stats = {
            "refills": 0,
            "vector_reads": 0,
            "single_reads": 0,
            "bytes_fetched": 0,
            "bytes_decompressed": 0,
            "clusters_decoded": 0,
            "pages_fetched": 0,
            "checksum_failures": 0,
        }

    # -- metric plumbing ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(f"ntuple.{name}").inc(amount)

    # -- public -------------------------------------------------------------

    def plan(self, events: Optional[int] = None) -> List[Tuple[int, int]]:
        """Page spans in consumption order (cluster by cluster).

        ``events`` clamps the scan: refills never load clusters past
        it, and the returned spans — ready for ``fetcher.plan`` — stop
        there too.
        """
        self._stop = (
            self.meta.n_entries if events is None
            else max(1, min(int(events), self.meta.n_entries))
        )
        spans: List[Tuple[int, int]] = []
        for cluster in self.meta.cluster_list:
            lo = cluster.first_entry
            hi = min(cluster.end_entry, self._stop)
            if lo >= hi:
                break
            spans.extend(
                sorted(
                    {
                        page.span
                        for column in self.columns
                        for page in column.pages_for_entries(lo, hi)
                    }
                )
            )
        return spans

    def read_entry(self, entry: int):
        """Effect sub-op: {column: record bytes} for one entry.

        Record bytes are ``None`` when ``decode`` is off.
        """
        if not 0 <= entry < self.meta.n_entries:
            raise RootIOError(f"entry {entry} out of range")
        if not self._window[0] <= entry < self._window[1]:
            yield from self._refill(entry)
        out = {}
        for column in self.columns:
            index = self.meta.cluster_for_entry(entry)
            buffer = self._buffers[(column.name, index)]
            if buffer is None:
                out[column.name] = None
            else:
                base = entry - self.meta.cluster_list[index].first_entry
                out[column.name] = buffer[
                    base * column.event_size
                    : (base + 1) * column.event_size
                ]
        return out

    # -- refill machinery ---------------------------------------------------

    def _refill(self, entry: int):
        """Load the next ``lanes`` clusters concurrently."""
        first = self.meta.cluster_for_entry(entry)
        batch = []
        for index in range(
            first, min(first + self.lanes, len(self.meta.cluster_list))
        ):
            cluster = self.meta.cluster_list[index]
            if cluster.first_entry >= self._stop and index > first:
                break
            batch.append(index)
        started = self.clock() if self.clock is not None else None
        jobs = [self._cluster_job(index) for index in batch]
        outcomes = yield from bounded_gather(
            jobs, limit=self.lanes, name="ntuple-lane"
        )
        self._buffers.clear()
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
            index, decoded = outcome.value
            for name, buffer in decoded.items():
                self._buffers[(name, index)] = buffer
        lo = self.meta.cluster_list[batch[0]].first_entry
        hi = self.meta.cluster_list[batch[-1]].end_entry
        self._window = (lo, hi)
        self.stats["refills"] += 1
        if started is not None and self.metrics is not None:
            self.metrics.histogram(
                "request.phase_seconds", phase="ntuple-decode"
            ).observe(self.clock() - started)

    def _cluster_job(self, index: int):
        """One lane: fetch, verify, decode, charge CPU for one cluster."""
        cluster = self.meta.cluster_list[index]
        lo = cluster.first_entry
        hi = min(cluster.end_entry, max(self._stop, lo + 1))

        def job():
            wanted = [
                (column, column.pages_for_entries(lo, hi))
                for column in self.columns
            ]
            spans = sorted(
                {page.span for _, pages in wanted for page in pages}
            )
            blobs = yield from self.reader.fetcher.fetch_vec(spans)
            blob_by_span = dict(zip(spans, blobs))
            self.stats["vector_reads"] += 1
            self.stats["pages_fetched"] += len(spans)
            fetched = sum(len(blob) for blob in blobs)
            self.stats["bytes_fetched"] += fetched
            self._count("pages_fetched_total", len(spans))
            self._count("bytes_fetched_total", fetched)

            decoded: Dict[str, Optional[bytes]] = {}
            uncompressed = 0
            for column, pages in wanted:
                uncompressed += sum(page.uncompressed for page in pages)
                if not self.decode:
                    decoded[column.name] = None
                    continue
                parts = []
                for page in pages:
                    try:
                        raw = decode_page(blob_by_span[page.span], page)
                    except PageChecksumError:
                        self.stats["checksum_failures"] += 1
                        self._count("checksum_failures_total")
                        raise
                    a = max(lo, page.first_entry) - page.first_entry
                    b = min(hi, page.end_entry) - page.first_entry
                    parts.append(
                        raw[a * column.event_size : b * column.event_size]
                    )
                decoded[column.name] = b"".join(parts)
            self.stats["bytes_decompressed"] += uncompressed
            self.stats["clusters_decoded"] += 1
            self._count("clusters_decoded_total")
            if self.decompress_bandwidth:
                cost = uncompressed / self.decompress_bandwidth
                if cost > 0:
                    yield Sleep(cost)
            return index, decoded

        return job
