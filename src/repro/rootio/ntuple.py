"""RNTuple-style page/cluster container: the v2 columnar format.

Layout::

    magic "RNTP0002" | footer_offset u64 | footer_len u64 |
    cluster 0: col A pages..., col B pages... | cluster 1: ... |
    JSON footer (cluster row ranges + per-column page locators)

Differences from the v1 basket format (:mod:`repro.rootio.treefile`)
that matter for remote I/O:

* **pages, not baskets** — each column is cut into fixed-byte-budget
  pages (~64 KiB uncompressed), an order of magnitude finer than v1's
  100-entry baskets, so a sparse row selection fetches far fewer bytes
  (the read-amplification lever of the RNTuple papers);
* **cluster-major layout** — all columns' pages of one row cluster are
  adjacent on disk, so "cluster x selected columns" is a handful of
  nearby ranges: one coalesced multi-range GET per cluster, and
  clusters decode independently (the parallel-lane lever);
* **separable footer** — the index is one contiguous tail blob whose
  location the 24-byte header names, fetched with one ranged GET;
* **per-page adler32 checksums** — stored in the footer, verified on
  decode *before* decompression; damage surfaces as a typed
  :class:`~repro.errors.PageChecksumError`, never as silent corruption;
* **per-column compression** — any column may pick its own zlib level,
  including level 0 (store) for incompressible payloads.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.concurrency import bounded_gather
from repro.errors import PageChecksumError, RootIOError
from repro.rootio.zipfmt import compress_basket, decompress_basket

__all__ = [
    "NTUPLE_MAGIC",
    "PageInfo",
    "ColumnMeta",
    "ClusterInfo",
    "NTupleMeta",
    "write_ntuple_file",
    "ntuple_meta_from_json",
    "decode_page",
    "NTupleReader",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_CLUSTER_ENTRIES",
]

NTUPLE_MAGIC = b"RNTP0002"
HEADER = struct.Struct(">8sQQ")

#: Uncompressed byte budget of one page (ROOT's default ballpark).
DEFAULT_PAGE_BYTES = 64 * 1024
#: Entries per row cluster (the unit of parallel decode).
DEFAULT_CLUSTER_ENTRIES = 500


@dataclass(frozen=True)
class PageInfo:
    """One stored page: location, row range, checksum."""

    offset: int  # byte offset in the file
    nbytes: int  # compressed size on disk (incl. framing)
    first_entry: int
    n_entries: int
    uncompressed: int
    #: adler32 of the on-disk blob (frame included), verified on decode.
    checksum: int

    @property
    def end_entry(self) -> int:
        return self.first_entry + self.n_entries

    @property
    def span(self) -> Tuple[int, int]:
        """(offset, nbytes) — the read needed to load this page."""
        return (self.offset, self.nbytes)


@dataclass
class ColumnMeta:
    """One column: fixed-size records in ordered pages."""

    name: str
    event_size: int  # bytes per entry, uncompressed
    #: zlib level the column was written with (0 = store).
    level: int = 1
    pages: List[PageInfo] = field(default_factory=list)

    def page_for_entry(self, entry: int) -> PageInfo:
        """The page holding ``entry`` (binary search)."""
        low, high = 0, len(self.pages)
        while low < high:
            mid = (low + high) // 2
            page = self.pages[mid]
            if entry < page.first_entry:
                high = mid
            elif entry >= page.end_entry:
                low = mid + 1
            else:
                return page
        raise RootIOError(f"column {self.name}: no page for entry {entry}")

    def pages_for_entries(self, start: int, stop: int) -> List[PageInfo]:
        """Pages covering entries [start, stop)."""
        if start >= stop:
            return []
        return [
            page
            for page in self.pages
            if page.end_entry > start and page.first_entry < stop
        ]

    # v1 BranchMeta-compatible spellings (same tree-read surface).
    basket_for_entry = page_for_entry
    baskets_for_entries = pages_for_entries

    @property
    def baskets(self) -> List[PageInfo]:
        """v1 alias: the pages double as this column's baskets."""
        return self.pages

    @property
    def compressed_bytes(self) -> int:
        return sum(page.nbytes for page in self.pages)

    @property
    def uncompressed_bytes(self) -> int:
        return sum(page.uncompressed for page in self.pages)


@dataclass(frozen=True)
class ClusterInfo:
    """One row cluster: a contiguous entry range decoded as a unit."""

    first_entry: int
    n_entries: int

    @property
    def end_entry(self) -> int:
        return self.first_entry + self.n_entries


@dataclass
class NTupleMeta:
    """The full ntuple: clusters, columns, file footprint.

    Duck-types the v1 :class:`~repro.rootio.tree.TreeMeta` read surface
    (``branch``/``branch_names``/``segments_for_entries``/``clusters``)
    so planners and caches written for v1 work unchanged.
    """

    name: str
    n_entries: int
    cluster_list: List[ClusterInfo]
    columns: List[ColumnMeta]
    file_size: int = 0

    def column(self, name: str) -> ColumnMeta:
        for column in self.columns:
            if column.name == name:
                return column
        raise RootIOError(f"no column named {name!r}")

    # v1-compatible spelling.
    branch = column

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    branch_names = column_names

    @property
    def branches(self) -> List[ColumnMeta]:
        """v1 alias for the column list."""
        return self.columns

    @property
    def compressed_bytes(self) -> int:
        return sum(column.compressed_bytes for column in self.columns)

    def cluster_for_entry(self, entry: int) -> int:
        """Index of the cluster holding ``entry`` (binary search)."""
        low, high = 0, len(self.cluster_list)
        while low < high:
            mid = (low + high) // 2
            cluster = self.cluster_list[mid]
            if entry < cluster.first_entry:
                high = mid
            elif entry >= cluster.end_entry:
                low = mid + 1
            else:
                return mid
        raise RootIOError(f"no cluster for entry {entry}")

    def segments_for_entries(
        self,
        start: int,
        stop: int,
        branch_names: Sequence[str] = (),
    ) -> List[Tuple[int, int]]:
        """Byte ranges (page spans) covering entries [start, stop)."""
        names = branch_names or self.column_names
        spans = set()
        for name in names:
            for page in self.column(name).pages_for_entries(start, stop):
                spans.add(page.span)
        return sorted(spans)

    def clusters(self, entries_per_cluster: int = 0) -> Iterator[Tuple[int, int]]:
        """Yield (start, stop) windows — the *stored* cluster bounds.

        The argument exists for v1 signature compatibility and is
        ignored: v2 clusters are a property of the file, not the
        reader.
        """
        for cluster in self.cluster_list:
            yield (cluster.first_entry, cluster.end_entry)

    def validate(self) -> None:
        """Structural sanity: contiguous clusters, aligned pages."""
        if self.n_entries < 0:
            raise RootIOError("negative entry count")
        expected = 0
        for cluster in self.cluster_list:
            if cluster.first_entry != expected:
                raise RootIOError(
                    f"cluster at entry {cluster.first_entry}, "
                    f"expected {expected}"
                )
            if cluster.n_entries < 1:
                raise RootIOError("empty cluster")
            expected = cluster.end_entry
        if expected != self.n_entries:
            raise RootIOError(
                f"clusters cover {expected} entries, "
                f"ntuple has {self.n_entries}"
            )
        bounds = [
            (cluster.first_entry, cluster.end_entry)
            for cluster in self.cluster_list
        ]
        for column in self.columns:
            expected = 0
            cluster_index = 0
            for page in column.pages:
                if page.first_entry != expected:
                    raise RootIOError(
                        f"column {column.name}: page at entry "
                        f"{page.first_entry}, expected {expected}"
                    )
                if page.n_entries < 1:
                    raise RootIOError(f"column {column.name}: empty page")
                if page.uncompressed != page.n_entries * column.event_size:
                    raise RootIOError(
                        f"column {column.name}: uncompressed size "
                        f"mismatch at entry {page.first_entry}"
                    )
                # Pages must not straddle a cluster boundary — that is
                # what makes a cluster independently decodable.
                while (
                    cluster_index < len(bounds)
                    and page.first_entry >= bounds[cluster_index][1]
                ):
                    cluster_index += 1
                if (
                    cluster_index >= len(bounds)
                    or page.end_entry > bounds[cluster_index][1]
                ):
                    raise RootIOError(
                        f"column {column.name}: page "
                        f"[{page.first_entry}, {page.end_entry}) "
                        f"straddles a cluster boundary"
                    )
                expected = page.end_entry
            if expected != self.n_entries:
                raise RootIOError(
                    f"column {column.name}: covers {expected} entries, "
                    f"ntuple has {self.n_entries}"
                )


def _column_level(
    compression: Union[int, Mapping[str, int]], name: str
) -> int:
    if isinstance(compression, Mapping):
        return int(compression.get(name, 1))
    return int(compression)


def write_ntuple_file(
    name: str,
    branch_arrays: Dict[str, bytes],
    n_entries: int,
    cluster_entries: int = DEFAULT_CLUSTER_ENTRIES,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    compression: Union[int, Mapping[str, int]] = 1,
) -> bytes:
    """Serialise column data into a v2 ntuple file (returned as bytes).

    ``branch_arrays`` maps column name to its concatenated fixed-size
    event records — the same input :func:`write_tree_file` takes, so
    one dataset materialises identically in both formats.
    ``compression`` is a zlib level for every column, or a mapping
    ``{column: level}`` (missing columns default to 1, level 0 =
    store).
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if cluster_entries < 1:
        raise ValueError("cluster_entries must be >= 1")
    if page_bytes < 1:
        raise ValueError("page_bytes must be >= 1")

    columns: List[ColumnMeta] = []
    sizes: Dict[str, int] = {}
    for column_name, data in branch_arrays.items():
        if len(data) % n_entries != 0:
            raise RootIOError(
                f"column {column_name}: {len(data)} bytes does not "
                f"divide into {n_entries} entries"
            )
        sizes[column_name] = len(data) // n_entries
        columns.append(
            ColumnMeta(
                name=column_name,
                event_size=sizes[column_name],
                level=_column_level(compression, column_name),
            )
        )

    body = bytearray()
    cursor = HEADER.size
    cluster_list: List[ClusterInfo] = []
    for first in range(0, n_entries, cluster_entries):
        count = min(cluster_entries, n_entries - first)
        cluster_list.append(ClusterInfo(first_entry=first, n_entries=count))
        for column in columns:
            data = branch_arrays[column.name]
            event_size = column.event_size
            page_entries = max(1, page_bytes // event_size)
            for page_first in range(first, first + count, page_entries):
                page_count = min(
                    page_entries, first + count - page_first
                )
                raw = data[
                    page_first * event_size
                    : (page_first + page_count) * event_size
                ]
                blob = compress_basket(raw, level=column.level)
                column.pages.append(
                    PageInfo(
                        offset=cursor,
                        nbytes=len(blob),
                        first_entry=page_first,
                        n_entries=page_count,
                        uncompressed=len(raw),
                        checksum=zlib.adler32(blob) & 0xFFFFFFFF,
                    )
                )
                body += blob
                cursor += len(blob)

    meta = NTupleMeta(
        name=name,
        n_entries=n_entries,
        cluster_list=cluster_list,
        columns=columns,
    )
    footer = json.dumps(_meta_to_json(meta)).encode("utf-8")
    header = HEADER.pack(NTUPLE_MAGIC, cursor, len(footer))
    blob = header + bytes(body) + footer
    meta.file_size = len(blob)
    return blob


def _meta_to_json(meta: NTupleMeta) -> dict:
    return {
        "name": meta.name,
        "n_entries": meta.n_entries,
        "clusters": [
            [cluster.first_entry, cluster.n_entries]
            for cluster in meta.cluster_list
        ],
        "columns": [
            {
                "name": column.name,
                "event_size": column.event_size,
                "level": column.level,
                "pages": [
                    [p.offset, p.nbytes, p.first_entry, p.n_entries,
                     p.uncompressed, p.checksum]
                    for p in column.pages
                ],
            }
            for column in meta.columns
        ],
    }


def ntuple_meta_from_json(doc: dict, file_size: int = 0) -> NTupleMeta:
    """Rebuild an NTupleMeta from its JSON footer."""
    try:
        columns = [
            ColumnMeta(
                name=raw["name"],
                event_size=raw["event_size"],
                level=raw.get("level", 1),
                pages=[
                    PageInfo(
                        offset=o, nbytes=n, first_entry=f,
                        n_entries=c, uncompressed=u, checksum=ck,
                    )
                    for o, n, f, c, u, ck in raw["pages"]
                ],
            )
            for raw in doc["columns"]
        ]
        meta = NTupleMeta(
            name=doc["name"],
            n_entries=doc["n_entries"],
            cluster_list=[
                ClusterInfo(first_entry=f, n_entries=c)
                for f, c in doc["clusters"]
            ],
            columns=columns,
            file_size=file_size,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RootIOError(f"malformed ntuple footer: {exc}") from exc
    meta.validate()
    return meta


def decode_page(blob: bytes, page: PageInfo, verify: bool = True) -> bytes:
    """Checksum-verify and decompress one page blob.

    The adler32 runs over the on-disk bytes *before* decompression, so
    corruption raises :class:`~repro.errors.PageChecksumError` instead
    of feeding garbage to the inflater (or, for stored pages, to the
    analysis).
    """
    if len(blob) != page.nbytes:
        raise RootIOError(
            f"short page read: have {len(blob)}, want {page.nbytes}"
        )
    if verify and zlib.adler32(blob) & 0xFFFFFFFF != page.checksum:
        raise PageChecksumError(
            f"page at offset {page.offset} failed its adler32 check"
        )
    data = decompress_basket(blob)
    if len(data) != page.uncompressed:
        raise RootIOError(
            f"page inflated to {len(data)}, footer says "
            f"{page.uncompressed}"
        )
    return data


class NTupleReader:
    """Opens a v2 ntuple through any fetcher and reads entries.

    Same surface as :class:`~repro.rootio.treefile.TreeFileReader`
    (``open``/``read_entries``), plus cluster-parallel decode: pass
    ``lanes > 1`` and every intersecting cluster becomes an independent
    fetch+verify+decode job fanned out over
    :func:`~repro.concurrency.bounded_gather`.
    """

    def __init__(self, fetcher):
        self.fetcher = fetcher
        self.meta = None

    def open(self):
        """Effect sub-op: header + one ranged footer GET -> metadata."""
        head = yield from self.fetcher.fetch(0, HEADER.size)
        if len(head) != HEADER.size:
            raise RootIOError("file too short for an ntuple header")
        magic, footer_offset, footer_len = HEADER.unpack(head)
        if magic != NTUPLE_MAGIC:
            raise RootIOError(f"bad ntuple magic {magic!r}")
        raw_footer = yield from self.fetcher.fetch(
            footer_offset, footer_len
        )
        if len(raw_footer) != footer_len:
            raise RootIOError("truncated ntuple footer")
        try:
            doc = json.loads(raw_footer.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RootIOError(f"unreadable ntuple footer: {exc}") from exc
        self.meta = ntuple_meta_from_json(
            doc, file_size=footer_offset + footer_len
        )
        return self.meta

    def read_page(self, page: PageInfo):
        """Effect sub-op: fetch + verify + decompress one page."""
        blob = yield from self.fetcher.fetch(page.offset, page.nbytes)
        return decode_page(blob, page)

    def read_entries(
        self,
        start: int,
        stop: int,
        branch_names: Sequence[str] = (),
        lanes: int = 1,
    ):
        """Effect sub-op: {column: concatenated records of [start, stop)}.

        Each intersecting cluster is one job — a coalesced vectored
        fetch of the selected columns' page spans, then checksum-verify
        and decode — and up to ``lanes`` jobs run concurrently.
        """
        if self.meta is None:
            raise RootIOError("open() the reader first")
        meta = self.meta
        names = list(branch_names) or meta.column_names
        columns = [meta.column(name) for name in names]
        jobs = []
        for cluster in meta.cluster_list:
            lo = max(start, cluster.first_entry)
            hi = min(stop, cluster.end_entry)
            if lo >= hi:
                continue
            jobs.append(self._cluster_job(columns, lo, hi))
        outcomes = yield from bounded_gather(
            jobs, limit=max(1, lanes), name="ntuple-cluster"
        )
        pieces: Dict[str, List[bytes]] = {name: [] for name in names}
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
            for name, data in outcome.value.items():
                pieces[name].append(data)
        return {name: b"".join(parts) for name, parts in pieces.items()}

    def _cluster_job(self, columns: List[ColumnMeta], lo: int, hi: int):
        """One decode lane: fetch + verify + slice [lo, hi) of a cluster."""

        def job():
            wanted = [
                (column, column.pages_for_entries(lo, hi))
                for column in columns
            ]
            spans = sorted(
                {page.span for _, pages in wanted for page in pages}
            )
            blobs = yield from self.fetcher.fetch_vec(spans)
            blob_by_span = dict(zip(spans, blobs))
            out: Dict[str, bytes] = {}
            for column, pages in wanted:
                parts = []
                for page in pages:
                    raw = decode_page(blob_by_span[page.span], page)
                    a = max(lo, page.first_entry) - page.first_entry
                    b = min(hi, page.end_entry) - page.first_entry
                    parts.append(
                        raw[a * column.event_size : b * column.event_size]
                    )
                out[column.name] = b"".join(parts)
            return out

        return job
