"""ROOT-like columnar event I/O: tree files, TTreeCache, generators."""

from repro.rootio.fetchers import DavixFetcher, XrootdFetcher
from repro.rootio.generator import (
    BranchSpec,
    DatasetSpec,
    generate_tree_bytes,
    generate_tree_layout,
    paper_dataset,
)
from repro.rootio.tree import BasketInfo, BranchMeta, TreeMeta
from repro.rootio.treecache import TTreeCache
from repro.rootio.treefile import (
    LocalFetcher,
    TreeFileReader,
    write_tree_file,
)
from repro.rootio.zipfmt import compress_basket, decompress_basket

__all__ = [
    "DavixFetcher",
    "XrootdFetcher",
    "BranchSpec",
    "DatasetSpec",
    "generate_tree_bytes",
    "generate_tree_layout",
    "paper_dataset",
    "BasketInfo",
    "BranchMeta",
    "TreeMeta",
    "TTreeCache",
    "LocalFetcher",
    "TreeFileReader",
    "write_tree_file",
    "compress_basket",
    "decompress_basket",
]
