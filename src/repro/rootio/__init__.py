"""ROOT-like columnar event I/O: tree files, TTreeCache, generators.

Two on-disk formats share one fetcher protocol and one read surface:

* **v1 baskets** (:mod:`repro.rootio.treefile`) — branch-major basket
  blobs behind a JSON index, read through
  :class:`TreeFileReader`/:class:`TTreeCache`;
* **v2 pages/clusters** (:mod:`repro.rootio.ntuple`) — RNTuple-style
  cluster-major pages with per-page adler32 checksums and a separable
  footer, read through :class:`NTupleReader`/:class:`ClusterScan`
  with parallel per-cluster decode lanes.
"""

from repro.rootio.clusterscan import ClusterScan
from repro.rootio.fetchers import DavixFetcher, XrootdFetcher
from repro.rootio.generator import (
    BranchSpec,
    DatasetSpec,
    generate_ntuple_bytes,
    generate_ntuple_layout,
    generate_tree_bytes,
    generate_tree_layout,
    paper_dataset,
)
from repro.rootio.ntuple import (
    ClusterInfo,
    ColumnMeta,
    NTupleMeta,
    NTupleReader,
    PageInfo,
    decode_page,
    ntuple_meta_from_json,
    write_ntuple_file,
)
from repro.rootio.tree import BasketInfo, BranchMeta, TreeMeta
from repro.rootio.treecache import TTreeCache
from repro.rootio.treefile import (
    LocalFetcher,
    TreeFileReader,
    write_tree_file,
)
from repro.rootio.zipfmt import compress_basket, decompress_basket

__all__ = [
    "DavixFetcher",
    "XrootdFetcher",
    "BranchSpec",
    "DatasetSpec",
    "generate_tree_bytes",
    "generate_tree_layout",
    "generate_ntuple_bytes",
    "generate_ntuple_layout",
    "paper_dataset",
    "BasketInfo",
    "BranchMeta",
    "TreeMeta",
    "TTreeCache",
    "LocalFetcher",
    "TreeFileReader",
    "write_tree_file",
    "compress_basket",
    "decompress_basket",
    "PageInfo",
    "ColumnMeta",
    "ClusterInfo",
    "NTupleMeta",
    "NTupleReader",
    "ClusterScan",
    "write_ntuple_file",
    "ntuple_meta_from_json",
    "decode_page",
]
