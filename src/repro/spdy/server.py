"""SPDY-like server: multiplexes a StorageApp over one connection.

TLS is mandatory (the property the paper objects to); request streams
are processed concurrently and response bodies are chunked into DATA
frames so large responses interleave with small ones.
"""

from __future__ import annotations

from typing import Optional

from repro.concurrency import (
    Accept,
    Close,
    EffectLock,
    Recv,
    Send,
    Sleep,
    Spawn,
)
from repro.concurrency.runtime import Runtime
from repro.concurrency.tlsmodel import TlsPolicy, server_handshake
from repro.errors import (
    ConnectionClosed,
    HttpProtocolError,
    NetworkError,
    TransferTimeout,
)
from repro.http import Request
from repro.server.handlers import StorageApp
from repro.spdy import protocol as sp

__all__ = ["SpdyServer", "serve_spdy"]


class SpdyServer:
    """Wraps a :class:`StorageApp` behind SPDY-like framing + TLS."""

    def __init__(
        self,
        app: StorageApp,
        tls: Optional[TlsPolicy] = None,
    ):
        self.app = app
        self.tls = tls or TlsPolicy()  # mandatory in SPDY
        self.connections_handled = 0

    def serve_forever(self, listener):
        """Effect op: accept loop."""
        while True:
            try:
                channel = yield Accept(listener)
            except (NetworkError, ConnectionClosed):
                return
            yield Spawn(
                self.handle_connection(channel), name="spdy-conn"
            )

    def handle_connection(self, channel):
        """Effect op: TLS, then demultiplex request streams."""
        self.connections_handled += 1
        try:
            yield from server_handshake(channel, self.tls)
        except (ConnectionClosed, HttpProtocolError, TransferTimeout):
            yield Close(channel)
            return

        reader = sp.FrameReader()
        send_lock = EffectLock()
        bodies = {}
        heads = {}
        try:
            while True:
                frame = reader.next_frame()
                if frame is None:
                    data = yield Recv(channel)
                    if not data:
                        break
                    yield Sleep(self.tls.record_cost(len(data)))
                    reader.feed(data)
                    continue
                if frame.type == sp.TYPE_HEADERS:
                    heads[frame.streamid] = sp.decode_request_head(
                        frame.payload
                    )
                    bodies[frame.streamid] = bytearray()
                elif frame.type == sp.TYPE_DATA:
                    bodies.setdefault(frame.streamid, bytearray()).extend(
                        frame.payload
                    )
                if frame.fin and frame.streamid in heads:
                    method, target, headers = heads.pop(frame.streamid)
                    body = bytes(bodies.pop(frame.streamid, b""))
                    request = Request(
                        method=method,
                        target=target,
                        headers=headers,
                        body=body or b"",
                    )
                    yield Spawn(
                        self._process(
                            channel, send_lock, frame.streamid, request
                        ),
                        name=f"spdy-stream-{frame.streamid}",
                    )
        except (ConnectionClosed, HttpProtocolError, TransferTimeout):
            pass
        yield Close(channel)

    def _process(self, channel, send_lock, streamid, request):
        """Effect op: serve one stream."""
        result = self.app.handle(request)
        if result.deferred is not None:
            result.response = yield from result.deferred()
        service = result.service_time + self.tls.record_cost(
            result.body_length
        )
        if service > 0:
            yield Sleep(service)

        response = result.response
        head = sp.encode_response_head(response.status, response.headers)
        if result.stream is not None:
            chunks = result.stream
        elif response.body:
            chunks = iter([response.body])
        else:
            chunks = iter(())

        try:
            yield from self._send_frame(
                channel, send_lock,
                sp.encode_frame(streamid, sp.TYPE_HEADERS, head),
            )
            pending = None
            for chunk in chunks:
                for start in range(0, len(chunk), sp.MAX_FRAME_PAYLOAD):
                    piece = chunk[start : start + sp.MAX_FRAME_PAYLOAD]
                    if pending is not None:
                        yield from self._send_frame(
                            channel, send_lock,
                            sp.encode_frame(
                                streamid, sp.TYPE_DATA, pending
                            ),
                        )
                    pending = piece
            yield from self._send_frame(
                channel, send_lock,
                sp.encode_frame(
                    streamid,
                    sp.TYPE_DATA,
                    pending if pending is not None else b"",
                    flags=sp.FLAG_FIN,
                ),
            )
        except ConnectionClosed:
            pass

    def _send_frame(self, channel, send_lock, wire: bytes):
        ticket = yield from send_lock.acquire()
        try:
            yield Send(channel, wire)
        finally:
            send_lock.release(ticket)


def serve_spdy(
    runtime: Runtime,
    server: SpdyServer,
    port: int = 443,
    host: Optional[str] = None,
):
    """Open a listener and spawn the accept loop."""
    listener = runtime.listen(port, host)
    runtime.spawn(server.serve_forever(listener), name="spdy-server")
    return listener
