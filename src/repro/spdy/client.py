"""SPDY-like client: many concurrent HTTP exchanges, one connection.

The comparator for davix's pool: a single TLS connection carrying all
streams. A reader task demultiplexes frames to per-stream promises.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.concurrency import (
    Await,
    Close,
    Connect,
    MakePromise,
    Recv,
    Send,
    Sleep,
    Spawn,
)
from repro.concurrency.tlsmodel import TlsPolicy, client_handshake
from repro.errors import ConnectionClosed, HttpProtocolError
from repro.http import Request, Response
from repro.spdy import protocol as sp

__all__ = ["SpdyClient"]


class _Stream:
    __slots__ = ("promise", "status", "headers", "body")

    def __init__(self, promise):
        self.promise = promise
        self.status = None
        self.headers = None
        self.body = bytearray()


class SpdyClient:
    """One multiplexed TLS connection to a SPDY-like server."""

    def __init__(self, channel, tls: TlsPolicy):
        self.channel = channel
        self.tls = tls
        self._next_streamid = 1
        self._streams: Dict[int, _Stream] = {}
        self._closed = False
        self.requests_sent = 0

    @classmethod
    def connect(
        cls,
        endpoint: Tuple[str, int],
        tls: Optional[TlsPolicy] = None,
        tcp_options=None,
    ):
        """Effect sub-op: connect, TLS-handshake, start the demux."""
        tls = tls or TlsPolicy()
        channel = yield Connect(endpoint, tcp_options)
        yield from client_handshake(channel, tls)
        client = cls(channel, tls)
        yield Spawn(client._reader(), name="spdy-demux")
        return client

    def _reader(self):
        reader = sp.FrameReader()
        try:
            while True:
                frame = reader.next_frame()
                if frame is None:
                    data = yield Recv(self.channel)
                    if not data:
                        raise ConnectionClosed("spdy server closed")
                    yield Sleep(self.tls.record_cost(len(data)))
                    reader.feed(data)
                    continue
                stream = self._streams.get(frame.streamid)
                if stream is None:
                    continue  # abandoned stream
                if frame.type == sp.TYPE_HEADERS:
                    stream.status, stream.headers = (
                        sp.decode_response_head(frame.payload)
                    )
                elif frame.type == sp.TYPE_DATA:
                    stream.body.extend(frame.payload)
                if frame.fin:
                    del self._streams[frame.streamid]
                    if stream.status is None:
                        stream.promise.reject(
                            HttpProtocolError("stream closed headerless")
                        )
                    else:
                        stream.promise.resolve(
                            Response(
                                stream.status,
                                stream.headers,
                                bytes(stream.body),
                            )
                        )
        except (ConnectionClosed, HttpProtocolError) as exc:
            self._closed = True
            for stream in list(self._streams.values()):
                stream.promise.reject(
                    ConnectionClosed(f"spdy connection lost: {exc}")
                )
            self._streams.clear()

    def request_nowait(self, request: Request):
        """Effect sub-op: open a stream; returns a promise(Response)."""
        if self._closed:
            raise ConnectionClosed("spdy client closed")
        streamid = self._next_streamid
        self._next_streamid += 2  # odd ids, like the real protocol
        promise = yield MakePromise()
        self._streams[streamid] = _Stream(promise)
        self.requests_sent += 1
        head = sp.encode_request_head(
            request.method, request.target, request.headers
        )
        wire = bytearray(
            sp.encode_frame(
                streamid,
                sp.TYPE_HEADERS,
                head,
                flags=0 if request.body else sp.FLAG_FIN,
            )
        )
        body = request.body
        for start in range(0, len(body), sp.MAX_FRAME_PAYLOAD):
            piece = body[start : start + sp.MAX_FRAME_PAYLOAD]
            last = start + sp.MAX_FRAME_PAYLOAD >= len(body)
            wire += sp.encode_frame(
                streamid,
                sp.TYPE_DATA,
                piece,
                flags=sp.FLAG_FIN if last else 0,
            )
        yield Sleep(self.tls.record_cost(len(wire)))
        yield Send(self.channel, bytes(wire))
        return promise

    def request(self, request: Request, timeout=None):
        """Effect sub-op: one full exchange on its own stream."""
        promise = yield from self.request_nowait(request)
        response = yield Await(promise, timeout=timeout)
        return response

    def disconnect(self):
        """Effect sub-op: close the connection."""
        self._closed = True
        yield Close(self.channel)
