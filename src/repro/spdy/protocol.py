"""SPDY-like framing: multiplexed HTTP streams over one connection.

Section 2.2 of the paper examines SPDY as the fix for HTTP's missing
multiplexing: "It supports multiplexing, prioritization and header
compression" but "explicitly enforces the usage of SSL/TLS". This
module implements the *behaviourally relevant* subset so the trade-off
can be measured against davix's connection pool:

* frames: ``streamid u32 | type u8 | flags u8 | length u32 | payload``;
* HEADERS frames carry a request or response head (compact key/value
  encoding, zlib-compressed — SPDY's header compression);
* DATA frames carry body chunks; FLAG_FIN closes a stream;
* any number of streams interleave on one connection.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HttpProtocolError
from repro.http import Headers

__all__ = [
    "TYPE_HEADERS",
    "TYPE_DATA",
    "FLAG_FIN",
    "Frame",
    "FrameReader",
    "encode_frame",
    "encode_request_head",
    "decode_request_head",
    "encode_response_head",
    "decode_response_head",
]

HEADER = struct.Struct(">IBBI")

TYPE_HEADERS = 1
TYPE_DATA = 2

FLAG_FIN = 0x01

#: Frame payload cap: large bodies must be chunked, which is what lets
#: streams interleave.
MAX_FRAME_PAYLOAD = 262_144


@dataclass(frozen=True)
class Frame:
    streamid: int
    type: int
    flags: int
    payload: bytes

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)


def encode_frame(
    streamid: int, frame_type: int, payload: bytes = b"", flags: int = 0
) -> bytes:
    """Serialise one frame (header + payload)."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise HttpProtocolError(
            f"frame payload {len(payload)} exceeds cap"
        )
    return HEADER.pack(streamid, frame_type, flags, len(payload)) + payload


class FrameReader:
    """Incremental deframer."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Frame]:
        if len(self._buffer) < HEADER.size:
            return None
        streamid, frame_type, flags, length = HEADER.unpack_from(
            self._buffer
        )
        if length > MAX_FRAME_PAYLOAD:
            raise HttpProtocolError(f"oversized frame ({length} B)")
        total = HEADER.size + length
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[HEADER.size : total])
        del self._buffer[:total]
        return Frame(streamid, frame_type, flags, payload)


# -- header blocks -----------------------------------------------------------------


def _encode_kv(pairs: List[Tuple[str, str]]) -> bytes:
    out = [struct.pack(">H", len(pairs))]
    for name, value in pairs:
        raw_name = name.encode("utf-8")
        raw_value = value.encode("utf-8")
        out.append(struct.pack(">H", len(raw_name)))
        out.append(raw_name)
        out.append(struct.pack(">I", len(raw_value)))
        out.append(raw_value)
    # SPDY's header compression.
    return zlib.compress(b"".join(out), 6)


def _decode_kv(blob: bytes) -> List[Tuple[str, str]]:
    try:
        raw = zlib.decompress(blob)
    except zlib.error as exc:
        raise HttpProtocolError(f"bad header block: {exc}") from exc
    (count,) = struct.unpack_from(">H", raw)
    cursor = 2
    pairs = []
    for _ in range(count):
        (name_length,) = struct.unpack_from(">H", raw, cursor)
        cursor += 2
        name = raw[cursor : cursor + name_length].decode("utf-8")
        cursor += name_length
        (value_length,) = struct.unpack_from(">I", raw, cursor)
        cursor += 4
        value = raw[cursor : cursor + value_length].decode("utf-8")
        cursor += value_length
        pairs.append((name, value))
    return pairs


def encode_request_head(
    method: str, target: str, headers: Headers
) -> bytes:
    """Compress a request head into a HEADERS payload."""
    pairs = [(":method", method), (":path", target)]
    pairs.extend(headers.items())
    return _encode_kv(pairs)


def decode_request_head(blob: bytes) -> Tuple[str, str, Headers]:
    """Parse a HEADERS payload into (method, target, headers)."""
    method = ""
    target = ""
    headers = Headers()
    for name, value in _decode_kv(blob):
        if name == ":method":
            method = value
        elif name == ":path":
            target = value
        else:
            headers.add(name, value)
    if not method or not target:
        raise HttpProtocolError("request head without :method/:path")
    return method, target, headers


def encode_response_head(status: int, headers: Headers) -> bytes:
    """Compress a response head into a HEADERS payload."""
    pairs = [(":status", str(status))]
    pairs.extend(headers.items())
    return _encode_kv(pairs)


def decode_response_head(blob: bytes) -> Tuple[int, Headers]:
    """Parse a HEADERS payload into (status, headers)."""
    status = None
    headers = Headers()
    for name, value in _decode_kv(blob):
        if name == ":status":
            try:
                status = int(value)
            except ValueError:
                raise HttpProtocolError(f"bad :status {value!r}") from None
        else:
            headers.add(name, value)
    if status is None:
        raise HttpProtocolError("response head without :status")
    return status, headers
