"""SPDY-like multiplexed HTTP — the alternative the paper rejects.

Implements enough of SPDY's design (framed streams over one mandatory-
TLS connection, header compression, interleaved DATA frames) to measure
the paper's Section 2.2 trade-off against davix's connection pool.
"""

from repro.spdy.client import SpdyClient
from repro.spdy.protocol import (
    FLAG_FIN,
    TYPE_DATA,
    TYPE_HEADERS,
    Frame,
    FrameReader,
)
from repro.spdy.server import SpdyServer, serve_spdy

__all__ = [
    "SpdyClient",
    "FLAG_FIN",
    "TYPE_DATA",
    "TYPE_HEADERS",
    "Frame",
    "FrameReader",
    "SpdyServer",
    "serve_spdy",
]
