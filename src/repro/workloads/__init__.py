"""The paper's workloads: HEP analysis job, scenario runner, campaign."""

from repro.workloads.analysis import (
    DAVIX_TCP,
    XROOTD_TCP,
    AnalysisConfig,
    AnalysisReport,
    davix_analysis,
    xrootd_analysis,
)
from repro.workloads.hammercloud import Campaign, CellStats, results_to_csv
from repro.workloads.runner import TREE_PATH, Scenario, run_scenario

__all__ = [
    "DAVIX_TCP",
    "XROOTD_TCP",
    "AnalysisConfig",
    "AnalysisReport",
    "davix_analysis",
    "xrootd_analysis",
    "Campaign",
    "CellStats",
    "results_to_csv",
    "TREE_PATH",
    "Scenario",
    "run_scenario",
]
