"""The paper's workload: a ROOT analysis job reading ~12 000 events.

Section 3: "we executed a High energy analysis job based on ROOT
framework reading a fraction or the totality of around 12000 particles
events from a 700 MBytes root file", once over davix/HTTP and once over
XRootD. This module implements that job for both protocols on top of
the shared TTreeCache.

Calibration (documented in DESIGN.md/EXPERIMENTS.md):

* per-event CPU + decompression are set so the LAN run lands near the
  paper's ~97 s;
* both protocols refill the TTreeCache synchronously (one vectored
  request per 100-event cluster) by default; ``davix_readahead`` /
  ``xrootd_readahead`` arm each side's client-level read-ahead
  (davix: the pipelined transfer engine; XRootD: the sliding window);
* XRootD's *sliding-window buffering* is modeled at the transport
  level: its connections run with a WAN-tuned TCP window
  (``XROOTD_TCP``), while the HTTP stack uses 2014-era OS defaults
  (``DAVIX_TCP``). The window only binds when the bandwidth-delay
  product exceeds it — i.e. on the transatlantic link — which is
  exactly the paper's observation: parity on LAN and GEANT, XRootD
  ~17.5 % ahead on the WAN;
* the small XRootD client-side per-request overhead reproduces davix's
  0.7 % LAN edge.

Every knob is an :class:`AnalysisConfig` field, so the ablation benches
can switch the mechanisms off one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.concurrency import Now, Sleep
from repro.core.context import Context, RequestParams, TransferConfig
from repro.net.tcp import TcpOptions
from repro.rootio.clusterscan import ClusterScan
from repro.rootio.fetchers import DavixFetcher, XrootdFetcher
from repro.rootio.ntuple import NTupleReader
from repro.rootio.tree import TreeMeta
from repro.rootio.treecache import TTreeCache
from repro.rootio.treefile import TreeFileReader
from repro.xrootd.client import XrdClient

__all__ = [
    "DAVIX_TCP",
    "XROOTD_TCP",
    "AnalysisConfig",
    "AnalysisReport",
    "davix_analysis",
    "xrootd_analysis",
]

#: 2014-era HTTP client stacks rode the OS default socket buffers.
DAVIX_TCP = TcpOptions(max_window=2_500_000)
#: XRootD ships WAN-tuned window/buffer settings.
XROOTD_TCP = TcpOptions(max_window=4_200_000)


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the analysis job (defaults = paper calibration)."""

    #: Fraction of the tree's entries to read (the paper sweeps this).
    fraction: float = 1.0
    #: Pure analysis CPU per event, seconds.
    per_event_cpu: float = 0.0069
    #: Client-side decompression throughput (bytes/s of uncompressed).
    decompress_bandwidth: float = 200e6
    #: TTreeCache cluster size in entries.
    entries_per_cluster: int = 100
    #: Entries served by per-basket reads before vectoring kicks in.
    learn_entries: int = 100
    #: Decode basket payloads (False for layout-only timing runs).
    decode: bool = False
    #: Transport tuning per protocol (see module docstring).
    davix_tcp: TcpOptions = DAVIX_TCP
    xrootd_tcp: TcpOptions = XROOTD_TCP
    #: XRootD client per-request scheduling cost, seconds.
    xrootd_request_overhead: float = 0.005
    #: Optional client-level read-ahead window for XRootD (bytes);
    #: None = rely on the transport window alone (the Fig. 4 setup).
    xrootd_readahead: Optional[int] = None
    #: Optional speculative window for davix's transfer engine
    #: (bytes); None = the synchronous vectored refills of the paper's
    #: 2014 client. Set, it arms ``TransferConfig(read_ahead=True)``
    #: and pipelines HTTP multi-range fetches ahead of consumption.
    davix_readahead: Optional[int] = None
    #: Concurrent in-flight requests for davix's engine paths.
    davix_max_inflight: int = 4
    #: On-disk format: "basket" (v1 TTreeCache) or "ntuple"
    #: (v2 ClusterScan with parallel decode lanes).
    format: str = "basket"
    #: Branch/column selection; empty = read every branch.
    columns: Tuple[str, ...] = ()
    #: Parallel per-cluster decode lanes (v2 only; 1 = serial).
    decode_lanes: int = 2

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.per_event_cpu < 0 or self.xrootd_request_overhead < 0:
            raise ValueError("CPU costs must be >= 0")
        if self.decompress_bandwidth <= 0:
            raise ValueError("decompress_bandwidth must be > 0")
        if self.format not in ("basket", "ntuple"):
            raise ValueError(f"unknown format {self.format!r}")
        if self.decode_lanes < 1:
            raise ValueError("decode_lanes must be >= 1")

    def with_(self, **changes) -> "AnalysisConfig":
        return replace(self, **changes)


@dataclass
class AnalysisReport:
    """Outcome of one analysis-job execution."""

    protocol: str
    events_read: int
    wall_seconds: float
    bytes_fetched: int
    remote_reads: int
    refills: int
    vector_reads: int
    single_reads: int

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events_read / self.wall_seconds


def _consumption_plan(
    meta: TreeMeta, events: int, cluster: int, branch_names=()
):
    """The access sequence in *consumption* order: cluster by cluster,
    not global file order (branches are laid out sequentially)."""
    plan = []
    for start, stop in meta.clusters(cluster):
        if start >= events:
            break
        plan.extend(
            meta.segments_for_entries(
                start, min(stop, events), branch_names
            )
        )
    return plan


def _open_cache(fetcher, cfg: AnalysisConfig, meta, metrics=None, clock=None):
    """Effect sub-op: the format's reader + cache -> (cache, events, spans).

    ``spans`` is the consumption-order read-ahead plan, ready for
    ``fetcher.plan`` when a client-level read-ahead window is armed.
    Both caches expose the same ``read_entry`` surface, so the caller's
    event loop never sees which format it is scanning.
    """
    if cfg.format == "ntuple":
        reader = NTupleReader(fetcher)
        if meta is None:
            meta = yield from reader.open()
        else:
            reader.meta = meta
        events = max(1, int(meta.n_entries * cfg.fraction))
        cache = ClusterScan(
            reader,
            branch_names=cfg.columns,
            lanes=cfg.decode_lanes,
            decode=cfg.decode,
            decompress_bandwidth=cfg.decompress_bandwidth,
            metrics=metrics,
            clock=clock,
        )
        spans = cache.plan(events)
    else:
        reader = TreeFileReader(fetcher)
        if meta is None:
            meta = yield from reader.open()
        else:
            reader.meta = meta
        events = max(1, int(meta.n_entries * cfg.fraction))
        cache = TTreeCache(
            reader,
            branch_names=cfg.columns,
            entries_per_cluster=cfg.entries_per_cluster,
            learn_entries=cfg.learn_entries,
            decode=cfg.decode,
            decompress_bandwidth=cfg.decompress_bandwidth,
        )
        spans = _consumption_plan(
            meta, events, cfg.entries_per_cluster, cfg.columns
        )
    return cache, events, spans


def _run_job(cache: TTreeCache, events: int, cfg: AnalysisConfig):
    """Effect sub-op shared by both protocols: the event loop."""
    start = yield Now()
    for entry in range(events):
        yield from cache.read_entry(entry)
        if cfg.per_event_cpu > 0:
            yield Sleep(cfg.per_event_cpu)
    end = yield Now()
    return end - start


def davix_analysis(
    context: Context,
    url,
    cfg: AnalysisConfig,
    meta: Optional[TreeMeta] = None,
    params: Optional[RequestParams] = None,
):
    """Effect op: run the analysis over davix/HTTP -> AnalysisReport.

    ``meta`` short-circuits index parsing for layout-only runs (the
    server hosts sized-but-synthetic content).
    """
    params = params or context.params.with_(tcp_options=cfg.davix_tcp)
    if cfg.davix_readahead:
        params = params.with_(
            transfer=TransferConfig(
                max_inflight=cfg.davix_max_inflight,
                read_ahead=True,
                window_bytes=cfg.davix_readahead,
            )
        )
    fetcher = DavixFetcher(context, url, params)
    cache, events, spans = yield from _open_cache(
        fetcher, cfg, meta, metrics=context.metrics, clock=context._now
    )
    if cfg.davix_readahead:
        fetcher.plan(spans)
    wall = yield from _run_job(cache, events, cfg)
    yield from fetcher.drain()
    return AnalysisReport(
        protocol="davix",
        events_read=events,
        wall_seconds=wall,
        bytes_fetched=fetcher.bytes_fetched,
        remote_reads=fetcher.reads,
        refills=cache.stats["refills"],
        vector_reads=cache.stats["vector_reads"],
        single_reads=cache.stats["single_reads"],
    )


def xrootd_analysis(
    endpoint: Tuple[str, int],
    path: str,
    cfg: AnalysisConfig,
    meta: Optional[TreeMeta] = None,
):
    """Effect op: run the analysis over XRootD -> AnalysisReport."""
    client = yield from XrdClient.connect(endpoint, cfg.xrootd_tcp)
    file = yield from client.open(path)
    fetcher = XrootdFetcher(
        client,
        file,
        window_bytes=cfg.xrootd_readahead,
        request_overhead=cfg.xrootd_request_overhead,
    )
    cache, events, spans = yield from _open_cache(fetcher, cfg, meta)
    if cfg.xrootd_readahead:
        fetcher.plan(spans)
    wall = yield from _run_job(cache, events, cfg)
    yield from client.close_file(file)
    yield from client.disconnect()
    return AnalysisReport(
        protocol="xrootd",
        events_read=events,
        wall_seconds=wall,
        bytes_fetched=fetcher.bytes_fetched,
        remote_reads=fetcher.reads,
        refills=cache.stats["refills"],
        vector_reads=cache.stats["vector_reads"],
        single_reads=cache.stats["single_reads"],
    )
