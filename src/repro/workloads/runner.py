"""Scenario runner: one analysis-job execution on a fresh simulation.

Builds the world the paper describes — a WLCG worker node and a DPM
storage server joined by one of the three network profiles — hosts the
dataset, runs the job over the chosen protocol, and returns the report.
Every run gets its own :class:`~repro.sim.Environment`, so runs are
independent and reproducible per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.concurrency import SimRuntime
from repro.core.context import Context, RequestParams
from repro.server.faults import FaultPolicy
from repro.net.profiles import NetProfile, build_network
from repro.rootio.generator import (
    DatasetSpec,
    generate_ntuple_bytes,
    generate_ntuple_layout,
    generate_tree_bytes,
    generate_tree_layout,
)
from repro.server import (
    FlatObjectApp,
    HttpServer,
    ObjectStore,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment
from repro.workloads.analysis import (
    AnalysisConfig,
    AnalysisReport,
    davix_analysis,
    xrootd_analysis,
)
from repro.xrootd import XrdServer, serve_xrootd

__all__ = ["Scenario", "run_scenario"]

TREE_PATH = "/dpm/data/hep_events.root"


@dataclass
class Scenario:
    """Everything one execution needs."""

    profile: NetProfile
    protocol: str  # "davix" | "xrootd"
    spec: DatasetSpec
    config: AnalysisConfig
    seed: int = 0
    #: Materialise real bytes (small runs) vs layout-only (big runs).
    materialize: bool = False
    #: Fault policy worn by the storage server (chaos runs); davix only.
    faults: Optional[FaultPolicy] = None
    #: Request params for the davix client (retry policy, deadline, …).
    params: Optional[RequestParams] = None
    #: Server dialect: "webdav" (full DPM-style StorageApp) or
    #: "object" (flat S3-like key store); davix only.
    backend: str = "webdav"

    def __post_init__(self):
        if self.protocol not in ("davix", "xrootd"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.backend not in ("webdav", "object"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "object" and self.protocol != "davix":
            raise ValueError("the object backend speaks HTTP (davix) only")


def run_scenario(
    scenario: Scenario,
    context: Optional[Context] = None,
    collector=None,
) -> AnalysisReport:
    """Execute one scenario in a fresh simulated world.

    ``context`` lets the caller supply a pre-composed
    :class:`~repro.core.context.Context` (a metric registry to inspect
    afterwards, a breaker config); the runner still rebinds its clock to
    the fresh simulation. ``collector`` (a
    :class:`~repro.obs.TelemetryCollector`) arms the storage server
    with a node-namespaced tracer and event log whose records are
    flushed into it after the run, so server-side spans join the
    client's traces in the assembled artifact. Both davix-only.
    """
    env = Environment()
    net = build_network(scenario.profile, env, seed=scenario.seed)
    client_rt = SimRuntime(net, "client")
    server_rt = SimRuntime(net, "server")

    store = ObjectStore(clock=server_rt.now)
    ntuple = scenario.config.format == "ntuple"
    if scenario.materialize:
        blob = (
            generate_ntuple_bytes(scenario.spec)
            if ntuple
            else generate_tree_bytes(scenario.spec)
        )
        store.put(TREE_PATH, blob)
        meta = None  # the client parses the real index/footer
    else:
        layout = (
            generate_ntuple_layout(scenario.spec)
            if ntuple
            else generate_tree_layout(scenario.spec)
        )
        store.put(TREE_PATH, ZeroContent(layout.file_size))
        meta = layout

    if scenario.protocol == "davix":
        app = (
            FlatObjectApp(store, faults=scenario.faults)
            if scenario.backend == "object"
            else StorageApp(store, faults=scenario.faults)
        )
        server_sink = None
        if collector is not None:
            from repro.obs import EventLog, Tracer
            from repro.obs.collector import TelemetrySink

            server_sink = TelemetrySink("server", clock=server_rt.now)
            app.tracer = Tracer(clock=server_rt.now, node="server")
            app.tracer.sink = server_sink.record_span
            app.events = EventLog()
            app.events.sink = server_sink.record_event
        HttpServer(server_rt, app, port=80).start()
        if context is None:
            context = Context(params=scenario.params)
        context.clock = client_rt.now
        # scenario.params is complete as given; otherwise analysis
        # derives its own (context default + the config's TCP options).
        report = client_rt.run(
            davix_analysis(
                context,
                f"http://server{TREE_PATH}",
                scenario.config,
                params=scenario.params,
                meta=meta,
            )
        )
        if server_sink is not None:
            server_sink.flush(target=collector)
    else:
        if context is not None or scenario.faults is not None:
            raise ValueError(
                "context/fault injection is davix-only"
            )
        serve_xrootd(server_rt, XrdServer(store), port=1094)
        report = client_rt.run(
            xrootd_analysis(
                ("server", 1094),
                TREE_PATH,
                scenario.config,
                meta=meta,
            )
        )
    return report
