"""HammerCloud-style run report rendered from the wide-event log.

HammerCloud's value was never the raw numbers — it was the one page an
operator reads after a campaign: how long executions took per site, and
where the time went. :func:`render_report` produces that page from a
JSONL event log (the output of
:meth:`~repro.workloads.hammercloud.Campaign.event_json_lines` or any
list of event dicts): per-cell execution statistics from the ``run``
events, a per-profile phase breakdown from the client-side ``request``
events, and SLO verdicts from replaying those requests through a
:class:`~repro.obs.SloTracker`.

Everything renders with fixed ``%.6f`` formatting over deterministic
simulated timings, so two seeded repetitions of the same campaign
produce byte-identical reports — the property the golden tests pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.stats import percentile
from repro.obs.phases import PHASES
from repro.obs.slo import SloPolicy, SloTracker

__all__ = ["render_report"]


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    """Space-aligned table lines (two-space indent, two-space gutter)."""
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  " + "  ".join(
            cell.ljust(width) for cell, width in zip(header, widths)
        ).rstrip()
    ]
    for row in rows:
        lines.append(
            "  " + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return lines


def _run_section(events: List[dict]) -> List[str]:
    cells: Dict[Tuple[str, str], List[float]] = {}
    for event in events:
        key = (str(event["protocol"]), str(event["profile"]))
        cells.setdefault(key, []).append(float(event["wall_seconds"]))
    rows = []
    for (protocol, profile), times in sorted(cells.items()):
        rows.append(
            [
                protocol,
                profile,
                str(len(times)),
                _fmt(sum(times) / len(times)),
                _fmt(percentile(times, 50)),
                _fmt(percentile(times, 95)),
            ]
        )
    lines = ["Executions (wall seconds)"]
    lines += _table(
        ["protocol", "profile", "n", "mean", "p50", "p95"], rows
    )
    return lines


def _phase_section(events: List[dict]) -> List[str]:
    """Mean per-request phase breakdown per profile (client side)."""
    by_profile: Dict[str, List[dict]] = {}
    for event in events:
        by_profile.setdefault(str(event.get("profile", "?")), []).append(
            event
        )
    lines = ["Phase breakdown (client, mean seconds per request)"]
    header = ["profile", "requests"] + list(PHASES)
    rows = []
    for profile, profile_events in sorted(by_profile.items()):
        row = [profile, str(len(profile_events))]
        for phase in PHASES:
            field = "phase_" + phase.replace("-", "_")
            total = sum(
                float(event.get(field, 0.0)) for event in profile_events
            )
            row.append(_fmt(total / len(profile_events)))
        rows.append(row)
    lines += _table(header, rows)
    return lines


def _cache_section(events: List[dict]) -> List[str]:
    """Per-cell page-cache counters summed over ``cache`` events."""
    fields = (
        "hits",
        "misses",
        "partial_hits",
        "origin_bytes_saved",
        "evicted_bytes",
        "invalidations",
    )
    cells: Dict[Tuple[str, str], Dict[str, int]] = {}
    for event in events:
        key = (
            str(event.get("protocol", "?")),
            str(event.get("profile", "?")),
        )
        agg = cells.setdefault(key, {field: 0 for field in fields})
        for field in fields:
            agg[field] += int(event.get(field, 0))
    rows = []
    for (protocol, profile), agg in sorted(cells.items()):
        lookups = (
            agg["hits"] + agg["partial_hits"] + agg["misses"]
        )
        served = agg["hits"] + agg["partial_hits"]
        ratio = served / lookups if lookups else 0.0
        rows.append(
            [protocol, profile]
            + [str(agg[field]) for field in fields]
            + [f"{ratio * 100:.2f}%"]
        )
    lines = ["Page cache (cache.* counters)"]
    lines += _table(
        ["protocol", "profile", "cache.hit", "cache.miss",
         "cache.partial_hit", "cache.origin_bytes_saved",
         "cache.evicted_bytes", "cache.invalidations", "hit_ratio"],
        rows,
    )
    return lines


def _ntuple_section(events: List[dict]) -> List[str]:
    """Per-cell columnar-scan counters summed over ``ntuple`` events."""
    fields = (
        "pages_fetched_total",
        "bytes_fetched_total",
        "clusters_decoded_total",
        "checksum_failures_total",
    )
    cells: Dict[Tuple[str, str], Dict[str, float]] = {}
    for event in events:
        key = (
            str(event.get("protocol", "?")),
            str(event.get("profile", "?")),
        )
        agg = cells.setdefault(
            key, {field: 0 for field in fields + ("decode_seconds",)}
        )
        for field in fields:
            agg[field] += int(event.get(field, 0))
        agg["decode_seconds"] += float(event.get("decode_seconds", 0.0))
    rows = []
    for (protocol, profile), agg in sorted(cells.items()):
        rows.append(
            [protocol, profile]
            + [str(int(agg[field])) for field in fields]
            + [_fmt(agg["decode_seconds"])]
        )
    lines = ["Columnar scan (ntuple.* counters)"]
    lines += _table(
        ["protocol", "profile", "ntuple.pages_fetched",
         "ntuple.bytes_fetched", "ntuple.clusters_decoded",
         "ntuple.checksum_failures", "decode_seconds"],
        rows,
    )
    return lines


def _telemetry_section(records: List[dict]) -> List[str]:
    """Collector rollup: per-node record counts, trace assembly health
    and the top critical-path buckets across every assembled trace."""
    from repro.obs.analyze import _aggregate_critical, assemble_traces

    nodes: Dict[str, Dict[str, int]] = {}
    for record in records:
        node = str(record.get("node", "?"))
        kind = str(record.get("type", "?"))
        per = nodes.setdefault(
            node, {"span": 0, "event": 0, "metrics": 0}
        )
        if kind in per:
            per[kind] += 1
    lines = ["Cluster telemetry"]
    rows = [
        [node, str(per["span"]), str(per["event"]), str(per["metrics"])]
        for node, per in sorted(nodes.items())
    ]
    lines += _table(["node", "spans", "events", "metrics"], rows)

    trees = assemble_traces(records)
    single = sum(1 for tree in trees if tree.is_single_tree)
    orphans = sum(len(tree.orphans) for tree in trees)
    lines.append(
        f"  traces={len(trees)} single_tree={single}"
        f" orphan_spans={orphans}"
    )
    buckets = _aggregate_critical(records)
    total = sum(buckets.values())
    if buckets:
        top = sorted(
            buckets.items(), key=lambda item: (-item[1], item[0])
        )[:8]
        lines.append("  Top critical-path buckets:")
        lines += _table(
            ["node", "bucket", "seconds", "share"],
            [
                [
                    node,
                    label,
                    _fmt(width),
                    f"{width / total * 100:.2f}%" if total else "-",
                ]
                for (node, label), width in top
            ],
        )
    return lines


def _tpc_section(events: List[dict]) -> List[str]:
    """Per-mode third-party-copy rollup over ``tpc`` events."""
    by_mode: Dict[str, List[dict]] = {}
    for event in events:
        by_mode.setdefault(str(event.get("mode", "?")), []).append(event)
    rows = []
    for mode, transfers in sorted(by_mode.items()):
        ok = [e for e in transfers if e.get("ok")]
        throughputs = sorted(
            float(e.get("throughput", 0.0)) for e in ok
        )
        rows.append(
            [
                mode,
                str(len(transfers)),
                str(len(ok)),
                str(sum(int(e.get("bytes", 0)) for e in ok)),
                str(sum(int(e.get("retries", 0)) for e in transfers)),
                _fmt(percentile(throughputs, 50)) if throughputs else "-",
            ]
        )
    lines = ["Third-party copies (tpc events)"]
    lines += _table(
        ["mode", "transfers", "ok", "bytes", "retries",
         "p50_throughput"],
        rows,
    )
    return lines


def _slo_section(
    events: List[dict], policy: SloPolicy
) -> List[str]:
    tracker = SloTracker(policy=policy)
    for event in events:
        tracker.record(
            str(event.get("origin", event.get("host", "?"))),
            float(event["duration"]),
            ok=int(event["status"]) < 500,
        )
    lines = [
        "SLO verdicts (availability>="
        f"{policy.availability * 100:.2f}%, "
        f"p{policy.latency_objective * 100:.0f} latency<="
        f"{policy.latency_threshold:.6f}s)"
    ]
    rows = []
    for origin in tracker.origins():
        latency = origin.latency_percentile(policy.latency_objective)
        rows.append(
            [
                origin.origin,
                str(origin.requests),
                f"{origin.availability * 100:.4f}%",
                f"{origin.latency_attainment * 100:.4f}%",
                _fmt(latency) if latency is not None else "-",
                _fmt(origin.budget_remaining()),
                origin.verdict,
            ]
        )
    lines += _table(
        [
            "origin",
            "requests",
            "availability",
            "latency_ok",
            "p_latency",
            "budget",
            "verdict",
        ],
        rows,
    )
    return lines


def render_report(
    events: Iterable[dict],
    policy: Optional[SloPolicy] = None,
    telemetry: Optional[Iterable[dict]] = None,
) -> str:
    """The HammerCloud-style run summary for an event log.

    ``events`` is any iterable of wide-event dicts (parsed JSONL);
    ``run`` events feed the execution table, client-side ``request``
    events feed the phase breakdown and the SLO verdicts, ``cache``
    events (page-cache-armed campaigns) feed the cache counters,
    ``ntuple`` events (columnar campaigns) feed the scan counters, and
    ``tpc`` events feed the third-party-copy rollup. ``telemetry`` is
    an optional list of collector records
    (:meth:`~repro.obs.TelemetryCollector.records`) rendered as the
    cluster-telemetry section.
    Sections with no events are omitted; an empty log renders a single
    stub line.
    """
    policy = policy or SloPolicy()
    events = list(events)
    runs = [e for e in events if e.get("kind") == "run"]
    requests = [
        e
        for e in events
        if e.get("kind") == "request" and e.get("side") == "client"
    ]
    sections: List[List[str]] = []
    if runs:
        sections.append(_run_section(runs))
    if requests:
        sections.append(_phase_section(requests))
        sections.append(_slo_section(requests, policy))
    caches = [e for e in events if e.get("kind") == "cache"]
    if caches:
        sections.append(_cache_section(caches))
    scans = [e for e in events if e.get("kind") == "ntuple"]
    if scans:
        sections.append(_ntuple_section(scans))
    copies = [e for e in events if e.get("kind") == "tpc"]
    if copies:
        sections.append(_tpc_section(copies))
    telemetry = list(telemetry) if telemetry is not None else []
    if telemetry:
        sections.append(_telemetry_section(telemetry))
    title = "HammerCloud run report"
    lines = [title, "=" * len(title)]
    if not sections:
        lines.append("(no events)")
    for section in sections:
        lines.append("")
        lines.extend(section)
    return "\n".join(lines) + "\n"
