"""HammerCloud-style campaign: repeated executions with statistics.

The paper averaged 576 HammerCloud executions over 12 days per data
point. Simulated time is free, so the campaign runs N independent
repetitions (different jitter seeds) per (protocol, profile) cell and
reports the same aggregate: the mean execution time.

The campaign is also the telemetry pipeline's head-end: every davix
repetition runs on its own :class:`~repro.core.context.Context` whose
wide events (one per request) are collected — tagged with protocol,
profile and repetition — alongside one ``run`` summary event per
repetition, and exported as JSONL
(:meth:`Campaign.event_json_lines`) or rendered as the
HammerCloud-style page (:meth:`Campaign.report`). ``python -m
repro.workloads.hammercloud`` runs a small campaign and writes both.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import Context, RequestParams
from repro.net.profiles import NetProfile
from repro.obs.events import events_to_json_lines
from repro.obs.slo import SloPolicy
from repro.rootio.generator import DatasetSpec
from repro.workloads.analysis import AnalysisConfig, AnalysisReport
from repro.workloads.report import render_report
from repro.workloads.runner import Scenario, run_scenario

__all__ = ["CellStats", "Campaign", "results_to_csv"]


@dataclass
class CellStats:
    """Aggregate over the repetitions of one campaign cell."""

    protocol: str
    profile: str
    reports: List[AnalysisReport] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        return [report.wall_seconds for report in self.reports]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def stdev(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return statistics.stdev(self.times)

    @property
    def minimum(self) -> float:
        return min(self.times)

    @property
    def maximum(self) -> float:
        return max(self.times)

    def __repr__(self) -> str:
        return (
            f"<CellStats {self.protocol}@{self.profile} "
            f"mean={self.mean:.2f}s n={len(self.reports)}>"
        )


def results_to_csv(results: Dict[Tuple[str, str], "CellStats"]) -> str:
    """Render a campaign matrix as CSV (one row per repetition)."""
    lines = [
        "protocol,profile,repetition,wall_seconds,events,bytes_fetched,"
        "remote_reads,refills"
    ]
    for (protocol, profile), cell in sorted(results.items()):
        for index, report in enumerate(cell.reports):
            lines.append(
                f"{protocol},{profile},{index},"
                f"{report.wall_seconds:.6f},{report.events_read},"
                f"{report.bytes_fetched},{report.remote_reads},"
                f"{report.refills}"
            )
    return "\n".join(lines) + "\n"


class Campaign:
    """Run the full (protocol x profile) matrix of analysis jobs."""

    def __init__(
        self,
        spec: DatasetSpec,
        config: AnalysisConfig,
        repetitions: int = 3,
        base_seed: int = 42,
        materialize: bool = False,
        params: Optional[RequestParams] = None,
        collector=None,
    ):
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.spec = spec
        self.config = config
        self.repetitions = repetitions
        self.base_seed = base_seed
        self.materialize = materialize
        #: Davix request params worn by every repetition's context —
        #: e.g. ``TransferConfig(page_cache_bytes=...)`` arms the client
        #: page cache, adding one ``cache`` event per repetition.
        self.params = params
        #: Optional :class:`~repro.obs.TelemetryCollector`: when set,
        #: every davix repetition's context wears a node-namespaced
        #: :class:`~repro.obs.TelemetrySink` (and the in-sim storage
        #: server gets one too), flushed here after each run — the
        #: cluster-wide trace artifact ``davix-tool trace`` reads.
        self.collector = collector
        #: Wide events accumulated across every cell run so far: the
        #: per-request events of each davix repetition (tagged with
        #: protocol/profile/repetition) plus one ``run`` summary event
        #: per repetition of either protocol.
        self.events: List[dict] = []

    def run_cell(
        self, protocol: str, profile: NetProfile
    ) -> CellStats:
        """All repetitions of one (protocol, profile) cell."""
        stats = CellStats(protocol=protocol, profile=profile.name)
        for repetition in range(self.repetitions):
            scenario = Scenario(
                profile=profile,
                protocol=protocol,
                spec=self.spec,
                config=self.config,
                seed=self.base_seed + repetition,
                materialize=self.materialize,
            )
            # Each davix repetition gets a fresh context so its event
            # log covers exactly one execution.
            sink = None
            if protocol == "davix" and self.collector is not None:
                from repro.obs.collector import TelemetrySink

                sink = TelemetrySink(
                    f"client-{profile.name}-r{repetition}"
                )
            context = (
                Context(params=self.params, telemetry=sink)
                if protocol == "davix"
                else None
            )
            report = run_scenario(
                scenario, context=context, collector=self.collector
            )
            stats.reports.append(report)
            tags = {
                "protocol": protocol,
                "profile": profile.name,
                "repetition": repetition,
            }
            if context is not None:
                for event in context.events.records():
                    merged = dict(event)
                    merged.update(tags)
                    self.events.append(merged)
                if context.page_cache is not None:
                    cache_event = {
                        "kind": "cache",
                        "used_bytes": context.page_cache.used_bytes,
                    }
                    cache_event.update(context.page_cache.stats)
                    cache_event.update(tags)
                    self.events.append(cache_event)
                scan_event = self._ntuple_event(context)
                if scan_event is not None:
                    scan_event.update(tags)
                    self.events.append(scan_event)
                if sink is not None:
                    context.flush_telemetry(target=self.collector)
            run_event = {
                "kind": "run",
                "wall_seconds": report.wall_seconds,
                "events_read": report.events_read,
                "bytes_fetched": report.bytes_fetched,
                "remote_reads": report.remote_reads,
                "refills": report.refills,
            }
            run_event.update(tags)
            self.events.append(run_event)
        return stats

    def run_matrix(
        self,
        profiles: Sequence[NetProfile],
        protocols: Sequence[str] = ("davix", "xrootd"),
    ) -> Dict[Tuple[str, str], CellStats]:
        """The full matrix; keys are (protocol, profile_name)."""
        results = {}
        for profile in profiles:
            for protocol in protocols:
                results[(protocol, profile.name)] = self.run_cell(
                    protocol, profile
                )
        return results

    # -- telemetry exports ----------------------------------------------------

    @staticmethod
    def _ntuple_event(context: Context) -> Optional[dict]:
        """One ``ntuple`` wide event from the context's ``ntuple.*``
        counters (columnar repetitions only — None otherwise)."""
        snapshot = context.metrics.snapshot()
        scan = {
            key[len("ntuple."):]: value
            for key, value in snapshot.items()
            if key.startswith("ntuple.")
        }
        if not scan:
            return None
        event = {"kind": "ntuple"}
        event.update(scan)
        decode = snapshot.get(
            "request.phase_seconds{phase=ntuple-decode}"
        )
        if isinstance(decode, tuple):
            event["decode_seconds"] = decode[1]
        return event

    def event_json_lines(self) -> str:
        """Every collected wide event as deterministic JSONL."""
        return events_to_json_lines(self.events)

    def telemetry_json_lines(self) -> str:
        """The collector's records as canonical JSONL ('' without a
        collector)."""
        if self.collector is None:
            return ""
        return self.collector.to_json_lines()

    def report(self, policy: Optional[SloPolicy] = None) -> str:
        """The HammerCloud-style run summary over the collected events."""
        telemetry = (
            self.collector.records()
            if self.collector is not None
            else None
        )
        return render_report(
            self.events, policy=policy, telemetry=telemetry
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run a small campaign and emit its telemetry artifacts.

    ``python -m repro.workloads.hammercloud --events-out events.jsonl
    --report-out report.txt`` — what the CI perf-smoke job archives.
    """
    import argparse
    import sys

    from repro.net.profiles import PROFILES

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.hammercloud",
        description="Run a HammerCloud-style campaign matrix.",
    )
    parser.add_argument(
        "--profiles",
        default="lan,geant,wan",
        help="comma-separated network profiles (default: lan,geant,wan)",
    )
    parser.add_argument(
        "--protocols",
        default="davix,xrootd",
        help="comma-separated protocols (default: davix,xrootd)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, metavar="N"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--entries", type=int, default=600, metavar="N",
        help="tree entries per execution (default: 600)",
    )
    parser.add_argument(
        "--events-out", metavar="PATH",
        help="write the JSONL wide-event log here",
    )
    parser.add_argument(
        "--report-out", metavar="PATH",
        help="write the rendered run report here",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="collect cluster telemetry and write the assembled"
        " span/event/metrics JSONL here (davix-tool trace reads it)",
    )
    args = parser.parse_args(argv)

    from repro.rootio.generator import BranchSpec

    profiles = [PROFILES[name] for name in args.profiles.split(",")]
    protocols = tuple(args.protocols.split(","))
    spec = DatasetSpec(
        name="hep_events",
        n_entries=args.entries,
        branches=(
            BranchSpec("px", event_size=512, compress_ratio=0.5),
            BranchSpec("py", event_size=256, compress_ratio=0.5),
        ),
        basket_entries=100,
        seed=7,
    )
    config = AnalysisConfig()
    collector = None
    if args.trace_out:
        from repro.obs.collector import TelemetryCollector

        collector = TelemetryCollector()
    campaign = Campaign(
        spec, config, repetitions=args.repetitions,
        base_seed=args.seed, collector=collector,
    )
    results = campaign.run_matrix(profiles, protocols=protocols)
    sys.stdout.write(results_to_csv(results))
    if args.events_out:
        with open(args.events_out, "w") as handle:
            handle.write(campaign.event_json_lines() + "\n")
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            lines = campaign.telemetry_json_lines()
            handle.write(lines + "\n" if lines else "")
    report = campaign.report()
    if args.report_out:
        with open(args.report_out, "w") as handle:
            handle.write(report)
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
