"""HammerCloud-style campaign: repeated executions with statistics.

The paper averaged 576 HammerCloud executions over 12 days per data
point. Simulated time is free, so the campaign runs N independent
repetitions (different jitter seeds) per (protocol, profile) cell and
reports the same aggregate: the mean execution time.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.profiles import NetProfile
from repro.rootio.generator import DatasetSpec
from repro.workloads.analysis import AnalysisConfig, AnalysisReport
from repro.workloads.runner import Scenario, run_scenario

__all__ = ["CellStats", "Campaign", "results_to_csv"]


@dataclass
class CellStats:
    """Aggregate over the repetitions of one campaign cell."""

    protocol: str
    profile: str
    reports: List[AnalysisReport] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        return [report.wall_seconds for report in self.reports]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def stdev(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return statistics.stdev(self.times)

    @property
    def minimum(self) -> float:
        return min(self.times)

    @property
    def maximum(self) -> float:
        return max(self.times)

    def __repr__(self) -> str:
        return (
            f"<CellStats {self.protocol}@{self.profile} "
            f"mean={self.mean:.2f}s n={len(self.reports)}>"
        )


def results_to_csv(results: Dict[Tuple[str, str], "CellStats"]) -> str:
    """Render a campaign matrix as CSV (one row per repetition)."""
    lines = [
        "protocol,profile,repetition,wall_seconds,events,bytes_fetched,"
        "remote_reads,refills"
    ]
    for (protocol, profile), cell in sorted(results.items()):
        for index, report in enumerate(cell.reports):
            lines.append(
                f"{protocol},{profile},{index},"
                f"{report.wall_seconds:.6f},{report.events_read},"
                f"{report.bytes_fetched},{report.remote_reads},"
                f"{report.refills}"
            )
    return "\n".join(lines) + "\n"


class Campaign:
    """Run the full (protocol x profile) matrix of analysis jobs."""

    def __init__(
        self,
        spec: DatasetSpec,
        config: AnalysisConfig,
        repetitions: int = 3,
        base_seed: int = 42,
        materialize: bool = False,
    ):
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.spec = spec
        self.config = config
        self.repetitions = repetitions
        self.base_seed = base_seed
        self.materialize = materialize

    def run_cell(
        self, protocol: str, profile: NetProfile
    ) -> CellStats:
        """All repetitions of one (protocol, profile) cell."""
        stats = CellStats(protocol=protocol, profile=profile.name)
        for repetition in range(self.repetitions):
            scenario = Scenario(
                profile=profile,
                protocol=protocol,
                spec=self.spec,
                config=self.config,
                seed=self.base_seed + repetition,
                materialize=self.materialize,
            )
            stats.reports.append(run_scenario(scenario))
        return stats

    def run_matrix(
        self,
        profiles: Sequence[NetProfile],
        protocols: Sequence[str] = ("davix", "xrootd"),
    ) -> Dict[Tuple[str, str], CellStats]:
        """The full matrix; keys are (protocol, profile_name)."""
        results = {}
        for profile in profiles:
            for protocol in protocols:
                results[(protocol, profile.name)] = self.run_cell(
                    protocol, profile
                )
        return results
