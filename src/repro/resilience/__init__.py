"""Resilience layer: retry/backoff, deadlines and circuit breaking.

The paper makes plain HTTP dependable on unreliable grid infrastructure
via transparent replica fail-over (Section 2.4); this package supplies
the policies real deployments layer underneath and around it:

* :class:`RetryPolicy` / :class:`RetrySchedule` — bounded attempts with
  deterministic (seeded) decorrelated-jitter backoff;
* :class:`Deadline` — a per-operation time budget threaded down to the
  socket reads;
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-endpoint
  closed/open/half-open breaking so dead replicas are skipped without
  burning the backoff window.

Everything runs on injected clocks and RNGs, so the chaos-test harness
in ``tests/resilience`` can assert exact retry counts, breaker
transitions and byte-identical metric exports across repeated runs.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.deadline import Deadline
from repro.resilience.retry import (
    IDEMPOTENT_METHODS,
    RetryPolicy,
    RetrySchedule,
    is_idempotent,
)

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "IDEMPOTENT_METHODS",
    "RetryPolicy",
    "RetrySchedule",
    "is_idempotent",
]
