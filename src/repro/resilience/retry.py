"""Retry policies: bounded attempts with deterministic backoff.

The paper's reliability story (Section 2.4) is replica fail-over; real
deployments layer *retry with backoff* underneath it, because most grid
failures are transient (an overloaded DPM pool node, a dropped
keep-alive connection). This module provides the policy object the
whole request path shares:

* :class:`RetryPolicy` — an immutable description: how many attempts,
  how the per-attempt delay grows, how it is jittered;
* :class:`RetrySchedule` — one policy *instance* for one logical
  operation, consuming an injected :class:`random.Random` so every
  delay sequence is reproducible from a seed.

Jitter follows the "decorrelated jitter" scheme (each delay is drawn
from ``[base, prev * multiplier]``, capped), which spreads synchronized
clients apart while keeping the expected delay exponential. With
``jitter="none"`` the schedule degrades to plain exponential backoff —
and with ``multiplier=1`` to a fixed delay, which is exactly the legacy
``RequestParams.retry_delay`` behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "IDEMPOTENT_METHODS",
    "is_idempotent",
    "RetryPolicy",
    "RetrySchedule",
]

#: Methods whose repetition cannot change server state a second time
#: (RFC 7231 §4.2.2 plus the WebDAV read-side verbs davix uses).
IDEMPOTENT_METHODS = frozenset(
    {
        "GET",
        "HEAD",
        "PUT",
        "DELETE",
        "OPTIONS",
        "PROPFIND",
        "MKCOL",
        "TRACE",
    }
)


def is_idempotent(method: str) -> bool:
    """True when retrying ``method`` after a partial exchange is safe."""
    return method.upper() in IDEMPOTENT_METHODS


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry/backoff description.

    ``max_attempts`` counts *total* tries, so ``max_attempts=1`` means
    "never retry". Delays start at ``base_delay`` and grow towards
    ``max_delay``; with decorrelated jitter each delay is drawn
    uniformly from ``[base_delay, previous * multiplier]``.
    """

    #: Total attempts (first try included); >= 1.
    max_attempts: int = 3
    #: First (and minimum) backoff delay, seconds.
    base_delay: float = 0.05
    #: Upper bound on any single delay, seconds.
    max_delay: float = 5.0
    #: Growth factor between attempts.
    multiplier: float = 3.0
    #: ``"decorrelated"`` (jittered) or ``"none"`` (deterministic
    #: exponential growth without randomness).
    jitter: str = "decorrelated"
    #: Seed for the schedule RNG when none is injected.
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in ("decorrelated", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def schedule(self, rng: Optional[random.Random] = None) -> "RetrySchedule":
        """A fresh :class:`RetrySchedule` for one logical operation.

        ``rng`` lets callers share one deterministic stream across many
        operations (the :class:`~repro.core.context.Context` does this);
        without it a new ``random.Random(seed)`` is created, so two
        schedules from the same policy produce identical delays.
        """
        return RetrySchedule(
            self, rng if rng is not None else random.Random(self.seed)
        )

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The backoff delays this policy would produce, for inspection."""
        schedule = self.schedule(rng)
        while True:
            delay = schedule.next_delay()
            if delay is None:
                return
            yield delay


class RetrySchedule:
    """Mutable per-operation state of one :class:`RetryPolicy`.

    ``next_delay()`` returns the backoff to sleep before the *next*
    attempt, or ``None`` once the attempt budget is spent. The first
    call corresponds to the first retry (the initial attempt needs no
    delay).
    """

    def __init__(self, policy: RetryPolicy, rng: random.Random):
        self.policy = policy
        self._rng = rng
        #: Retries handed out so far (not counting the initial attempt).
        self.retries = 0
        self._prev = policy.base_delay

    @property
    def exhausted(self) -> bool:
        return self.retries >= self.policy.max_attempts - 1

    def next_delay(self) -> Optional[float]:
        """Delay before the next attempt; None when out of attempts."""
        if self.exhausted:
            return None
        self.retries += 1
        policy = self.policy
        if policy.base_delay == 0 and policy.jitter == "none":
            return 0.0
        if policy.jitter == "none":
            delay = min(
                policy.max_delay,
                policy.base_delay
                * (policy.multiplier ** (self.retries - 1)),
            )
        else:
            upper = max(policy.base_delay, self._prev * policy.multiplier)
            delay = min(
                policy.max_delay,
                self._rng.uniform(policy.base_delay, upper),
            )
        self._prev = delay
        return delay
