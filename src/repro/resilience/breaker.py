"""Per-endpoint circuit breaking: closed -> open -> half-open.

A replica that answers every request with 503 (or resets every
connection) should not cost each new operation a full connect + retry
cycle: after ``threshold`` consecutive failures the endpoint's breaker
*opens* and requests to it are short-circuited with
:class:`~repro.errors.CircuitOpenError` — which the fail-over driver
treats like any other connection failure, so traffic moves to healthy
replicas without burning the backoff window on a known-dead host.

After ``cooldown`` seconds the breaker becomes *half-open*: a bounded
number of probe requests are let through; one success closes the
breaker, one failure re-opens it for another cooldown.

The :class:`BreakerBoard` owns one :class:`CircuitBreaker` per origin
``(scheme, host, port)``, mirrors every transition into the metrics
registry and keeps an ordered transition log — the chaos suite asserts
breaker behaviour against golden transition sequences.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker", "BreakerBoard"]


class BreakerState:
    """The three breaker states, as string constants."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one circuit breaker (shared by every origin on a board)."""

    #: Consecutive failures that open the breaker.
    threshold: int = 5
    #: Seconds an open breaker rejects requests before probing.
    cooldown: float = 30.0
    #: Concurrent probe requests allowed while half-open.
    half_open_max: int = 1

    def __post_init__(self):
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")


class CircuitBreaker:
    """Failure-counting state machine for one endpoint.

    Not thread-safe on its own; the owning :class:`BreakerBoard`
    serialises access.
    """

    def __init__(
        self,
        config: BreakerConfig,
        clock: Callable[[], float],
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        self.config = config
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._half_open_inflight = 0
        self._on_transition = on_transition

    def _transition(self, to: str) -> None:
        if to == self.state:
            return
        previous, self.state = self.state, to
        if self._on_transition is not None:
            self._on_transition(previous, to)

    def allow(self) -> bool:
        """May a request be sent to this endpoint right now?

        While half-open this *claims* a probe slot; the caller must
        report the probe's outcome via :meth:`on_success` /
        :meth:`on_failure`.
        """
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if (
                self.opened_at is not None
                and self.clock() - self.opened_at >= self.config.cooldown
            ):
                self._transition(BreakerState.HALF_OPEN)
                self._half_open_inflight = 0
            else:
                return False
        # half-open: admit a bounded number of probes.
        if self._half_open_inflight >= self.config.half_open_max:
            return False
        self._half_open_inflight += 1
        return True

    @property
    def blocked(self) -> bool:
        """Non-mutating check: would a request be rejected right now?

        Unlike :meth:`allow` this never claims a probe slot, so replica
        selection can skip open breakers without consuming the probe
        budget of a half-open one.
        """
        if self.state == BreakerState.CLOSED:
            return False
        if self.state == BreakerState.OPEN:
            return (
                self.opened_at is None
                or self.clock() - self.opened_at < self.config.cooldown
            )
        return self._half_open_inflight >= self.config.half_open_max

    def on_success(self) -> None:
        """Record a completed request against this endpoint."""
        self.consecutive_failures = 0
        if self.state == BreakerState.HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
            self._transition(BreakerState.CLOSED)
            self.opened_at = None

    def on_failure(self) -> None:
        """Record a failed request against this endpoint."""
        self.consecutive_failures += 1
        if self.state == BreakerState.HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
            self.opened_at = self.clock()
            self._transition(BreakerState.OPEN)
        elif (
            self.state == BreakerState.CLOSED
            and self.consecutive_failures >= self.config.threshold
        ):
            self.opened_at = self.clock()
            self._transition(BreakerState.OPEN)


class BreakerBoard:
    """One :class:`CircuitBreaker` per origin, with shared wiring.

    The board serialises access (safe under the thread runtime), feeds
    ``breaker.*`` metrics into the registry it is given, appends every
    state change to :attr:`transitions`, and invokes ``on_open`` when a
    breaker opens — the :class:`~repro.core.context.Context` wires that
    to :meth:`~repro.core.pool.SessionPool.purge_origin`, so a broken
    endpoint's idle keep-alive sessions are dropped with it.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = None,
        metrics=None,
        on_open: Optional[Callable[[Tuple], None]] = None,
    ):
        self.config = config or BreakerConfig()
        self.clock = clock or (lambda: 0.0)
        self.metrics = metrics
        self.on_open = on_open
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple, CircuitBreaker] = {}
        #: Ordered log of ``(time, origin, from_state, to_state)``.
        self.transitions: List[Tuple[float, Tuple, str, str]] = []

    def _breaker(self, origin: Tuple) -> CircuitBreaker:
        breaker = self._breakers.get(origin)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config,
                self.clock,
                on_transition=lambda prev, to, origin=origin: (
                    self._record_transition(origin, prev, to)
                ),
            )
            self._breakers[origin] = breaker
        return breaker

    def _record_transition(self, origin: Tuple, prev: str, to: str) -> None:
        self.transitions.append((self.clock(), origin, prev, to))
        if self.metrics is not None:
            self.metrics.counter("breaker.transitions_total", to=to).inc()
            self.metrics.gauge("breaker.open_circuits").set(
                sum(
                    1
                    for b in self._breakers.values()
                    if b.state == BreakerState.OPEN
                )
            )
        if to == BreakerState.OPEN and self.on_open is not None:
            self.on_open(origin)

    # -- request-path API -----------------------------------------------------

    def allow(self, origin: Tuple) -> bool:
        """Admission check (claims a half-open probe slot when any)."""
        with self._lock:
            allowed = self._breaker(origin).allow()
        if not allowed and self.metrics is not None:
            self.metrics.counter("breaker.short_circuits_total").inc()
        return allowed

    def is_blocked(self, origin: Tuple) -> bool:
        """Non-mutating: is the origin currently rejecting requests?"""
        with self._lock:
            breaker = self._breakers.get(origin)
            return breaker.blocked if breaker is not None else False

    def record(self, origin: Tuple, ok: bool) -> None:
        """Feed one request outcome into the origin's breaker."""
        with self._lock:
            breaker = self._breaker(origin)
            if ok:
                breaker.on_success()
            else:
                breaker.on_failure()

    # -- read side ------------------------------------------------------------

    def state(self, origin: Tuple) -> str:
        """The origin's current state (closed when never seen)."""
        with self._lock:
            breaker = self._breakers.get(origin)
            return breaker.state if breaker else BreakerState.CLOSED

    def states(self) -> Dict[Tuple, str]:
        """Snapshot of every tracked origin's state."""
        with self._lock:
            return {
                origin: breaker.state
                for origin, breaker in self._breakers.items()
            }

    def reset(self) -> None:
        """Forget every breaker and the transition log."""
        with self._lock:
            self._breakers.clear()
            self.transitions.clear()
