"""Per-operation time budgets over an injected clock.

A :class:`Deadline` is an absolute expiry point against whatever clock
the :class:`~repro.core.context.Context` runs on (simulated or
monotonic). It is threaded from ``RequestParams.deadline`` through
:func:`~repro.core.request.execute_request` down into
:meth:`~repro.core.session.Session.request`, where it clamps every
``Recv`` timeout — so one slow replica cannot eat the whole budget of
an operation that still has retries or replicas left.

Expiry raises :class:`~repro.errors.DeadlineExceeded`, which the retry
loop and the fail-over driver both treat as *final*: a blown budget is
a user-visible outcome, not a transient fault.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """An absolute expiry time on an injected clock."""

    __slots__ = ("clock", "expires_at", "budget")

    def __init__(self, clock: Callable[[], float], expires_at: float,
                 budget: Optional[float] = None):
        self.clock = clock
        self.expires_at = expires_at
        #: The original budget in seconds (for error messages).
        self.budget = budget

    @classmethod
    def after(cls, clock: Callable[[], float], seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError("deadline budget must be >= 0")
        return cls(clock, clock() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(self.budget)

    def clamp(self, timeout: Optional[float]) -> float:
        """``timeout`` bounded by the remaining budget.

        Raises :class:`DeadlineExceeded` instead of returning a zero (or
        negative) timeout — a wait that cannot succeed should not start.
        """
        remaining = self.expires_at - self.clock()
        if remaining <= 0:
            raise DeadlineExceeded(self.budget)
        if timeout is None:
            return remaining
        return min(timeout, remaining)
