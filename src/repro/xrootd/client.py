"""XRootD client with stream multiplexing and async reads.

One reader task per connection demultiplexes response frames to the
promise of the request that carries the same stream id — so any number
of reads can be outstanding at once. This is the capability the paper
credits for XRootD's WAN advantage (its sliding-window read-ahead sits
on top, in :mod:`repro.xrootd.readahead`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.concurrency import (
    Await,
    Close,
    Connect,
    MakePromise,
    Send,
    Spawn,
)
from repro.errors import ConnectionClosed, XrootdError
from repro.xrootd import protocol as proto

__all__ = ["XrdFile", "XrdClient"]


class XrdFile:
    """An open remote file: handle + size."""

    def __init__(self, client: "XrdClient", handle: int, size: int, path: str):
        self.client = client
        self.handle = handle
        self.size = size
        self.path = path

    def __repr__(self) -> str:
        return f"<XrdFile {self.path} size={self.size}>"


class XrdClient:
    """A multiplexed connection to one XRootD server.

    Build with :meth:`XrdClient.connect` (an effect sub-op)::

        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/data/f.root")
        data = yield from client.read(f, 0, 4096)
    """

    def __init__(self, channel, endpoint: Tuple[str, int]):
        self.channel = channel
        self.endpoint = endpoint
        self._next_streamid = 1
        self._pending: Dict[int, object] = {}
        self._partials: Dict[int, bytearray] = {}
        self._closed = False
        self._reader_task = None
        self.requests_sent = 0
        self.bytes_read = 0

    @classmethod
    def connect(cls, endpoint: Tuple[str, int], tcp_options=None):
        """Effect sub-op: connect and start the demultiplexer."""
        channel = yield Connect(endpoint, tcp_options)
        client = cls(channel, endpoint)
        client._reader_task = yield Spawn(
            client._reader(), name=f"xrootd-demux-{endpoint[0]}"
        )
        return client

    # -- demultiplexer -----------------------------------------------------------

    def _reader(self):
        from repro.concurrency import Recv

        reader = proto.FrameReader()
        try:
            while True:
                frame = reader.next_frame()
                if frame is None:
                    data = yield Recv(self.channel)
                    if not data:
                        raise ConnectionClosed(
                            f"{self.endpoint[0]}: server closed"
                        )
                    reader.feed(data)
                    continue
                streamid, status, payload = frame
                if status == proto.STATUS_OKSOFAR:
                    # Partial response: accumulate until the final OK.
                    self._partials.setdefault(
                        streamid, bytearray()
                    ).extend(payload)
                    continue
                promise = self._pending.pop(streamid, None)
                buffered = self._partials.pop(streamid, None)
                if promise is None:
                    continue  # response to an abandoned request
                if buffered is not None:
                    buffered.extend(payload)
                    payload = bytes(buffered)
                promise.resolve(proto.ResponseFrame(streamid, status, payload))
        except (ConnectionClosed, XrootdError) as exc:
            self._closed = True
            for promise in list(self._pending.values()):
                promise.reject(
                    ConnectionClosed(f"xrootd connection lost: {exc}")
                )
            self._pending.clear()

    # -- plumbing -------------------------------------------------------------------

    def request_nowait(self, reqid: int, payload: bytes):
        """Effect sub-op: send a request; returns a promise of the
        response frame. This is the async primitive read-ahead uses."""
        if self._closed:
            raise ConnectionClosed(f"{self.endpoint[0]}: client closed")
        streamid = self._next_streamid
        self._next_streamid = (self._next_streamid % 65535) + 1
        promise = yield MakePromise()
        self._pending[streamid] = promise
        self.requests_sent += 1
        yield Send(self.channel, proto.encode_request(streamid, reqid, payload))
        return promise

    def request(self, reqid: int, payload: bytes, timeout=None):
        """Effect sub-op: send a request and wait for its response."""
        promise = yield from self.request_nowait(reqid, payload)
        frame = yield Await(promise, timeout=timeout)
        if not frame.ok:
            code, message = proto.decode_error(frame.payload)
            raise XrootdError(message, code=code)
        return frame

    # -- file operations ---------------------------------------------------------------

    def open(self, path: str):
        """Effect sub-op: open a remote file."""
        frame = yield from self.request(proto.KXR_OPEN, proto.encode_open(path))
        handle, size = proto.decode_open_reply(frame.payload)
        return XrdFile(self, handle, size, path)

    def close_file(self, file: XrdFile):
        """Effect sub-op: release a remote file handle."""
        yield from self.request(
            proto.KXR_CLOSE, proto.encode_close(file.handle)
        )

    def stat(self, path: str):
        """Effect sub-op: (size, is_directory) of a remote path."""
        frame = yield from self.request(proto.KXR_STAT, proto.encode_stat(path))
        return proto.decode_stat_reply(frame.payload)

    def ping(self):
        """Effect sub-op: round trip to the server."""
        yield from self.request(proto.KXR_PING, b"")

    def read(self, file: XrdFile, offset: int, length: int):
        """Effect sub-op: synchronous positional read."""
        promise = yield from self.read_nowait(file, offset, length)
        data = yield from self.read_result(promise)
        return data

    def read_nowait(self, file: XrdFile, offset: int, length: int):
        """Effect sub-op: issue an async read; promise of the frame."""
        promise = yield from self.request_nowait(
            proto.KXR_READ, proto.encode_read(file.handle, offset, length)
        )
        return promise

    def read_result(self, promise, timeout=None):
        """Effect sub-op: await an async read's data."""
        frame = yield Await(promise, timeout=timeout)
        if not frame.ok:
            code, message = proto.decode_error(frame.payload)
            raise XrootdError(message, code=code)
        self.bytes_read += len(frame.payload)
        return frame.payload

    def readv(self, file: XrdFile, chunks: List[Tuple[int, int]]):
        """Effect sub-op: vectored read -> list of bytes, input order."""
        entries = [
            (file.handle, offset, length) for offset, length in chunks
        ]
        frame = yield from self.request(
            proto.KXR_READV, proto.encode_readv(entries)
        )
        pieces = proto.decode_readv_reply(frame.payload)
        self.bytes_read += sum(len(piece) for piece in pieces)
        return pieces

    def disconnect(self):
        """Effect sub-op: close the connection."""
        self._closed = True
        yield Close(self.channel)
