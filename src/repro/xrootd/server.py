"""XRootD-style data server over the effect runtimes.

Serves the same :class:`~repro.server.objectstore.ObjectStore` as the
HTTP storage server, with the same service-time model, so protocol
comparisons are apples-to-apples. Requests on one connection are
processed **concurrently** (one spawned processor each) and responses
return out of order — the server half of XRootD's multiplexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.concurrency import (
    Accept,
    Close,
    EffectLock,
    Recv,
    Send,
    Sleep,
    Spawn,
)
from repro.concurrency.runtime import Runtime
from repro.errors import ConnectionClosed, NetworkError, TransferTimeout, XrootdError
from repro.server.objectstore import ObjectStore, StoreError
from repro.xrootd import protocol as proto

__all__ = ["XrdServerConfig", "XrdServer", "serve_xrootd"]


@dataclass
class XrdServerConfig:
    """Service-time model matching the HTTP ServerConfig defaults."""

    service_overhead: float = 0.0005
    disk_bandwidth: float = 400e6
    #: Maximum chunks accepted in one readv request.
    max_readv_chunks: int = 1024
    #: Responses above this size are streamed as kXR_oksofar partials,
    #: releasing the connection between frames so other streams
    #: interleave (the multiplexing that big monolithic responses
    #: would otherwise defeat).
    response_chunk: int = 262_144


class _ConnState:
    """Per-connection open-file table and send serialisation."""

    def __init__(self):
        self.files: Dict[int, str] = {}
        self.next_handle = 1
        self.send_lock = EffectLock()


class XrdServer:
    """The XRootD data server bound to an object store."""

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[XrdServerConfig] = None,
    ):
        self.store = store
        self.config = config or XrdServerConfig()
        self.requests_handled = 0
        self.bytes_served = 0

    # -- serving loops ------------------------------------------------------

    def serve_forever(self, listener):
        """Effect op: accept loop."""
        while True:
            try:
                channel = yield Accept(listener)
            except (NetworkError, ConnectionClosed):
                return
            yield Spawn(
                self.handle_connection(channel), name="xrootd-conn"
            )

    def handle_connection(self, channel):
        """Effect op: deframe requests, spawn one processor each."""
        reader = proto.FrameReader()
        state = _ConnState()
        try:
            while True:
                frame = reader.next_frame()
                if frame is None:
                    data = yield Recv(channel)
                    if not data:
                        break
                    reader.feed(data)
                    continue
                streamid, reqid, payload = frame
                yield Spawn(
                    self._process(channel, state, streamid, reqid, payload),
                    name=f"xrootd-req-{streamid}",
                )
        except (ConnectionClosed, XrootdError, TransferTimeout):
            pass
        yield Close(channel)

    # -- request processing ------------------------------------------------------

    def _process(self, channel, state, streamid, reqid, payload):
        self.requests_handled += 1
        try:
            status, reply, service = self._dispatch(state, reqid, payload)
        except (XrootdError, StoreError) as exc:
            status = proto.STATUS_ERROR
            reply = proto.encode_error(1, str(exc))
            service = self.config.service_overhead
        if service > 0:
            yield Sleep(service)
        chunk = self.config.response_chunk
        try:
            if status != proto.STATUS_OK or len(reply) <= chunk:
                yield from self._send_frame(
                    channel, state, streamid, status, reply
                )
            else:
                # Stream the payload as oksofar partials; the send lock
                # is released between frames so other responses
                # interleave on the connection.
                for position in range(0, len(reply), chunk):
                    piece = reply[position : position + chunk]
                    last = position + chunk >= len(reply)
                    piece_status = (
                        proto.STATUS_OK if last else proto.STATUS_OKSOFAR
                    )
                    yield from self._send_frame(
                        channel, state, streamid, piece_status, piece
                    )
        except ConnectionClosed:
            pass

    def _send_frame(self, channel, state, streamid, status, payload):
        ticket = yield from state.send_lock.acquire()
        try:
            yield Send(
                channel, proto.encode_response(streamid, status, payload)
            )
        finally:
            state.send_lock.release(ticket)

    def _dispatch(self, state, reqid, payload):
        """(status, reply_payload, service_time) for one request."""
        overhead = self.config.service_overhead
        if reqid == proto.KXR_PING:
            return proto.STATUS_OK, b"", overhead

        if reqid == proto.KXR_OPEN:
            path = proto.decode_open(payload)
            obj = self.store.get(path)  # raises StoreError if missing
            handle = state.next_handle
            state.next_handle += 1
            state.files[handle] = path
            return (
                proto.STATUS_OK,
                proto.encode_open_reply(handle, obj.size),
                overhead,
            )

        if reqid == proto.KXR_CLOSE:
            handle = proto.decode_close(payload)
            state.files.pop(handle, None)
            return proto.STATUS_OK, b"", overhead

        if reqid == proto.KXR_STAT:
            path = proto.decode_open(payload)
            size, _mtime, is_dir = self.store.stat(path)
            return (
                proto.STATUS_OK,
                proto.encode_stat_reply(size, is_dir),
                overhead,
            )

        if reqid == proto.KXR_READ:
            handle, offset, length = proto.decode_read(payload)
            data = self._read(state, handle, offset, length)
            service = overhead + len(data) / self.config.disk_bandwidth
            return proto.STATUS_OK, data, service

        if reqid == proto.KXR_READV:
            chunks = proto.decode_readv(payload)
            if len(chunks) > self.config.max_readv_chunks:
                raise XrootdError(
                    f"readv with {len(chunks)} chunks exceeds limit"
                )
            pieces = []
            for handle, offset, length in chunks:
                pieces.append(self._read(state, handle, offset, length))
            blob = proto.encode_readv_reply(pieces)
            service = overhead + sum(
                len(piece) for piece in pieces
            ) / self.config.disk_bandwidth
            return proto.STATUS_OK, blob, service

        raise XrootdError(f"unknown request id {reqid}")

    def _read(self, state, handle, offset, length) -> bytes:
        path = state.files.get(handle)
        if path is None:
            raise XrootdError(f"bad file handle {handle}")
        data = self.store.read(path, offset, length)
        self.bytes_served += len(data)
        return data


def serve_xrootd(
    runtime: Runtime,
    server: XrdServer,
    port: int = 1094,
    host: Optional[str] = None,
):
    """Open a listener and spawn the accept loop; returns the listener."""
    listener = runtime.listen(port, host)
    runtime.spawn(server.serve_forever(listener), name="xrootd-server")
    return listener
