"""XRootD-style binary protocol: frames, request codes, codec.

A simplified but faithful-in-structure rendition of the XRootD wire
protocol (Dorigo et al.): fixed-size request/response headers carrying a
**stream id** that lets many requests be outstanding on one connection
with out-of-order responses — the multiplexing the paper contrasts with
HTTP's request/response lockstep.

Frame layout (big-endian):

* request:  ``streamid:u16  reqid:u16  dlen:u32`` + payload
* response: ``streamid:u16  status:u16 dlen:u32`` + payload
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import XrootdError

__all__ = [
    "KXR_OPEN",
    "KXR_CLOSE",
    "KXR_READ",
    "KXR_READV",
    "KXR_STAT",
    "KXR_PING",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_OKSOFAR",
    "RequestFrame",
    "ResponseFrame",
    "FrameReader",
    "encode_request",
    "encode_response",
    "encode_open",
    "decode_open",
    "encode_open_reply",
    "decode_open_reply",
    "encode_read",
    "decode_read",
    "encode_readv",
    "decode_readv",
    "encode_readv_reply",
    "decode_readv_reply",
    "encode_close",
    "decode_close",
    "encode_stat",
    "decode_stat_reply",
    "encode_stat_reply",
    "encode_error",
    "decode_error",
]

HEADER = struct.Struct(">HHI")

# Request ids (mirroring kXR_* numbering style).
KXR_OPEN = 3010
KXR_CLOSE = 3011
KXR_READ = 3013
KXR_READV = 3025
KXR_STAT = 3017
KXR_PING = 3020

STATUS_OK = 0
STATUS_ERROR = 1
#: Partial response: more frames for this stream id follow (used to
#: interleave large responses with other streams, like kXR_oksofar).
STATUS_OKSOFAR = 2

#: Maximum payload accepted in one frame (matches xrootd defaults).
MAX_DLEN = 16 * 1024 * 1024


@dataclass(frozen=True)
class RequestFrame:
    streamid: int
    reqid: int
    payload: bytes


@dataclass(frozen=True)
class ResponseFrame:
    streamid: int
    status: int
    payload: bytes

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def encode_request(streamid: int, reqid: int, payload: bytes = b"") -> bytes:
    """Serialise a request frame."""
    if len(payload) > MAX_DLEN:
        raise XrootdError(f"payload too large: {len(payload)}")
    return HEADER.pack(streamid, reqid, len(payload)) + payload


def encode_response(streamid: int, status: int, payload: bytes = b"") -> bytes:
    """Serialise a response frame."""
    if len(payload) > MAX_DLEN:
        raise XrootdError(f"payload too large: {len(payload)}")
    return HEADER.pack(streamid, status, len(payload)) + payload


class FrameReader:
    """Incremental frame deframer (role-agnostic).

    Feed bytes, pop ``(streamid, code, payload)`` triples. ``code`` is
    the request id on the server side, the status on the client side.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Tuple[int, int, bytes]]:
        if len(self._buffer) < HEADER.size:
            return None
        streamid, code, dlen = HEADER.unpack_from(self._buffer)
        if dlen > MAX_DLEN:
            raise XrootdError(f"frame dlen {dlen} exceeds maximum")
        total = HEADER.size + dlen
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[HEADER.size : total])
        del self._buffer[:total]
        return (streamid, code, payload)

    @property
    def buffered(self) -> int:
        return len(self._buffer)


# -- payload codecs --------------------------------------------------------------


def encode_open(path: str) -> bytes:
    """Open-request payload: length-prefixed path."""
    raw = path.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


def decode_open(payload: bytes) -> str:
    """Parse an open/stat request payload into the path."""
    (length,) = struct.unpack_from(">H", payload)
    raw = payload[2 : 2 + length]
    if len(raw) != length:
        raise XrootdError("truncated open payload")
    return raw.decode("utf-8")


def encode_open_reply(fhandle: int, size: int) -> bytes:
    """Open reply payload: file handle + size."""
    return struct.pack(">IQ", fhandle, size)


def decode_open_reply(payload: bytes) -> Tuple[int, int]:
    """Parse an open reply into (handle, size)."""
    try:
        return struct.unpack(">IQ", payload)
    except struct.error:
        raise XrootdError("bad open reply") from None


def encode_read(fhandle: int, offset: int, length: int) -> bytes:
    """Read request payload: handle, offset, length."""
    return struct.pack(">IQI", fhandle, offset, length)


def decode_read(payload: bytes) -> Tuple[int, int, int]:
    """Parse a read request into (handle, offset, length)."""
    try:
        return struct.unpack(">IQI", payload)
    except struct.error:
        raise XrootdError("bad read request") from None


def encode_readv(chunks: List[Tuple[int, int, int]]) -> bytes:
    """chunks: list of (fhandle, offset, length)."""
    out = struct.pack(">H", len(chunks))
    for fhandle, offset, length in chunks:
        out += struct.pack(">IQI", fhandle, offset, length)
    return out


def decode_readv(payload: bytes) -> List[Tuple[int, int, int]]:
    """Parse a readv request into (handle, offset, length) triples."""
    (count,) = struct.unpack_from(">H", payload)
    entry = struct.Struct(">IQI")
    expected = 2 + count * entry.size
    if len(payload) != expected:
        raise XrootdError(
            f"readv payload size {len(payload)} != expected {expected}"
        )
    return [
        entry.unpack_from(payload, 2 + i * entry.size)
        for i in range(count)
    ]


def encode_readv_reply(pieces: List[bytes]) -> bytes:
    """Length-prefixed concatenation of the readv result chunks."""
    out = [struct.pack(">H", len(pieces))]
    for piece in pieces:
        out.append(struct.pack(">I", len(piece)))
        out.append(piece)
    return b"".join(out)


def decode_readv_reply(payload: bytes) -> List[bytes]:
    """Parse a readv reply into its data chunks."""
    (count,) = struct.unpack_from(">H", payload)
    pieces = []
    cursor = 2
    for _ in range(count):
        if cursor + 4 > len(payload):
            raise XrootdError("truncated readv reply")
        (length,) = struct.unpack_from(">I", payload, cursor)
        cursor += 4
        piece = payload[cursor : cursor + length]
        if len(piece) != length:
            raise XrootdError("truncated readv reply chunk")
        pieces.append(piece)
        cursor += length
    if cursor != len(payload):
        raise XrootdError("trailing bytes in readv reply")
    return pieces


def encode_close(fhandle: int) -> bytes:
    """Close request payload: the file handle."""
    return struct.pack(">I", fhandle)


def decode_close(payload: bytes) -> int:
    """Parse a close request payload into the handle."""
    try:
        (fhandle,) = struct.unpack(">I", payload)
    except struct.error:
        raise XrootdError("bad close payload") from None
    return fhandle


def encode_stat(path: str) -> bytes:
    """Stat request payload (same shape as open)."""
    return encode_open(path)


def encode_stat_reply(size: int, is_dir: bool) -> bytes:
    """Stat reply payload: size + directory flag."""
    return struct.pack(">QB", size, 1 if is_dir else 0)


def decode_stat_reply(payload: bytes) -> Tuple[int, bool]:
    """Parse a stat reply into (size, is_directory)."""
    try:
        size, flag = struct.unpack(">QB", payload)
    except struct.error:
        raise XrootdError("bad stat reply") from None
    return size, bool(flag)


def encode_error(code: int, message: str) -> bytes:
    """Error payload: numeric code + UTF-8 message."""
    raw = message.encode("utf-8")
    return struct.pack(">I", code) + raw


def decode_error(payload: bytes) -> Tuple[int, str]:
    """Parse an error payload into (code, message)."""
    if len(payload) < 4:
        raise XrootdError("bad error payload")
    (code,) = struct.unpack_from(">I", payload)
    return code, payload[4:].decode("utf-8", "replace")
