"""Sliding-window read-ahead (the paper's Section 3 explanation).

The paper attributes XRootD's 17.5 % WAN advantage to "the sliding
windows buffering algorithm of XRootD which allows to minimize the
number of network round trips executed". This module implements it: the
client keeps up to ``window_bytes`` of *future* reads outstanding (async
reads multiplexed on one connection), so by the time the application
asks for a segment its response is usually already in flight or
arrived — latency is overlapped with computation instead of being paid
per read.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Tuple

from repro.xrootd.client import XrdClient, XrdFile

__all__ = ["ReadAheadWindow"]


class ReadAheadWindow:
    """Plan-driven sliding-window prefetcher over an XrdClient.

    The application declares its future access sequence with
    :meth:`set_plan` (ROOT knows it from the TTree structure); reads
    that follow the plan are served from outstanding async requests.
    Off-plan reads fall back to synchronous round trips.
    """

    def __init__(
        self,
        client: XrdClient,
        file: XrdFile,
        window_bytes: int = 8 * 1024 * 1024,
    ):
        if window_bytes < 1:
            raise ValueError("window_bytes must be >= 1")
        self.client = client
        self.file = file
        self.window_bytes = window_bytes
        self._plan: Deque[Tuple[int, int]] = deque()
        self._outstanding: Dict[Tuple[int, int], object] = {}
        self._inflight_bytes = 0
        self.stats = {"hits": 0, "misses": 0, "prefetched": 0}

    # -- planning ------------------------------------------------------------

    def set_plan(self, segments: Iterable[Tuple[int, int]]) -> None:
        """Replace the future access plan with ``segments``."""
        self._plan = deque(segments)

    def extend_plan(self, segments: Iterable[Tuple[int, int]]) -> None:
        self._plan.extend(segments)

    @property
    def planned(self) -> int:
        return len(self._plan)

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes

    # -- I/O ---------------------------------------------------------------------

    def _top_up(self):
        """Effect sub-op: issue planned reads while the window has room."""
        while self._plan and self._inflight_bytes < self.window_bytes:
            segment = self._plan.popleft()
            if segment in self._outstanding:
                continue
            offset, length = segment
            promise = yield from self.client.read_nowait(
                self.file, offset, length
            )
            self._outstanding[segment] = promise
            self._inflight_bytes += length
            self.stats["prefetched"] += 1

    def read(self, offset: int, length: int):
        """Effect sub-op: read a segment, preferring prefetched data."""
        yield from self._top_up()
        segment = (offset, length)
        promise = self._outstanding.pop(segment, None)
        if promise is None:
            self.stats["misses"] += 1
            data = yield from self.client.read(self.file, offset, length)
        else:
            self.stats["hits"] += 1
            data = yield from self.client.read_result(promise)
            self._inflight_bytes -= length
        yield from self._top_up()
        return data

    def drain(self):
        """Effect sub-op: await every outstanding prefetch (cleanup)."""
        for segment, promise in list(self._outstanding.items()):
            yield from self.client.read_result(promise)
            self._inflight_bytes -= segment[1]
        self._outstanding.clear()
