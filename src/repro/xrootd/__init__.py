"""XRootD baseline: the HPC-specific protocol the paper compares with.

Implements a simplified-but-structurally-faithful XRootD: binary
framing with stream-id multiplexing (:mod:`repro.xrootd.protocol`), a
data server sharing the HTTP server's object store and service model
(:mod:`repro.xrootd.server`), an async client
(:mod:`repro.xrootd.client`), and the sliding-window read-ahead that
gives XRootD its WAN edge (:mod:`repro.xrootd.readahead`).
"""

from repro.xrootd.client import XrdClient, XrdFile
from repro.xrootd.readahead import ReadAheadWindow
from repro.xrootd.server import XrdServer, XrdServerConfig, serve_xrootd

__all__ = [
    "XrdClient",
    "XrdFile",
    "ReadAheadWindow",
    "XrdServer",
    "XrdServerConfig",
    "serve_xrootd",
]
