"""Range-request handling: building 200/206/416 responses.

Implements the server half of the paper's Section 2.3: single ranges
answered with ``206`` + ``Content-Range``, multi-ranges with ``206`` +
``multipart/byteranges`` — the wire feature davix's vectored I/O rides
on. Servers can be configured *without* multi-range support to exercise
the client's fallback path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import HttpProtocolError
from repro.http import (
    Headers,
    RangePart,
    encode_byteranges,
    make_boundary,
    parse_range_header,
    resolve_ranges,
)
from repro.http.ranges import format_content_range
from repro.server.objectstore import StoredObject

__all__ = ["plan_range_response", "RangePlan"]


class RangePlan:
    """What the server will send for a (possibly ranged) GET.

    ``status`` is 200, 206 or 416. ``segments`` lists the
    ``(offset, length)`` object reads backing the body. For multi-range
    plans the body must be assembled with :meth:`build_multipart_body`.
    """

    def __init__(
        self,
        status: int,
        segments: List[Tuple[int, int]],
        headers: Headers,
        multipart_boundary: Optional[str] = None,
    ):
        self.status = status
        self.segments = segments
        self.headers = headers
        self.multipart_boundary = multipart_boundary

    @property
    def body_bytes(self) -> int:
        """Payload size before multipart framing."""
        return sum(length for _, length in self.segments)

    def build_multipart_body(self, obj: StoredObject) -> bytes:
        parts = [
            RangePart(
                offset=offset,
                data=obj.content.read(offset, length),
                total=obj.size,
            )
            for offset, length in self.segments
        ]
        return encode_byteranges(
            parts, self.multipart_boundary, obj.content_type
        )


def plan_range_response(
    obj: StoredObject,
    range_header: Optional[str],
    multirange_supported: bool = True,
    max_ranges: int = 256,
) -> RangePlan:
    """Decide how to answer a GET for ``obj`` given its Range header.

    Mirrors RFC 7233 server behaviour:

    * no/malformed Range -> 200 with the full representation;
    * one satisfiable range -> 206 + ``Content-Range``;
    * several ranges -> 206 + ``multipart/byteranges`` (or a full 200
      when the server does not support multi-range — the degraded mode
      davix must detect and handle);
    * nothing satisfiable -> 416 with ``Content-Range: bytes */size``;
    * more than ``max_ranges`` ranges -> treated as a full 200 (DoS
      guard, mirrors common server configurations).
    """
    base = Headers(
        [
            ("Accept-Ranges", "bytes"),
            ("ETag", obj.etag),
        ]
    )

    if range_header is None:
        return _full_plan(obj, base)
    try:
        specs = parse_range_header(range_header)
    except HttpProtocolError:
        # RFC 7233 3.1: a server MAY ignore an invalid Range header.
        return _full_plan(obj, base)

    if len(specs) > max_ranges:
        return _full_plan(obj, base)

    resolved = resolve_ranges(specs, obj.size)
    if not resolved:
        headers = base.copy()
        headers.set("Content-Range", f"bytes */{obj.size}")
        return RangePlan(416, [], headers)

    if len(resolved) == 1:
        offset, length = resolved[0]
        headers = base.copy()
        headers.set("Content-Type", obj.content_type)
        headers.set(
            "Content-Range", format_content_range(offset, length, obj.size)
        )
        return RangePlan(206, [resolved[0]], headers)

    if not multirange_supported:
        return _full_plan(obj, base)

    boundary = make_boundary()
    headers = base.copy()
    headers.set(
        "Content-Type", f"multipart/byteranges; boundary={boundary}"
    )
    return RangePlan(206, resolved, headers, multipart_boundary=boundary)


def _full_plan(obj: StoredObject, base: Headers) -> RangePlan:
    headers = base.copy()
    headers.set("Content-Type", obj.content_type)
    return RangePlan(200, [(0, obj.size)], headers)
