"""In-memory object store backing the storage server.

Two content representations share one interface:

* :class:`BytesContent` — real bytes (tests, examples, small files);
* :class:`SyntheticContent` — deterministic pseudo-random content of
  arbitrary size generated on demand. This is how the benchmarks host a
  700 MB ROOT file without 700 MB of RAM: any range read returns the
  same bytes every time, so end-to-end checks stay meaningful while the
  store holds only a 64 KiB seed block.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "Content",
    "BytesContent",
    "SyntheticContent",
    "ZeroContent",
    "StoredObject",
    "ObjectStore",
    "StoreError",
]


class StoreError(ReproError):
    """Object-store level failure (missing object, conflict, ...)."""


class Content:
    """Abstract object content: sized, randomly addressable bytes."""

    size: int

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def read_all(self) -> bytes:
        return self.read(0, self.size)

    def adler32(self) -> str:
        """WLCG-style adler32 checksum, zero-padded hex."""
        digest = 1
        for chunk in self.iter_chunks():
            digest = zlib.adler32(chunk, digest)
        return f"{digest & 0xFFFFFFFF:08x}"

    def md5(self) -> str:
        digest = hashlib.md5()
        for chunk in self.iter_chunks():
            digest.update(chunk)
        return digest.hexdigest()

    def iter_chunks(self, chunk_size: int = 1 << 20) -> Iterator[bytes]:
        offset = 0
        while offset < self.size:
            take = min(chunk_size, self.size - offset)
            yield self.read(offset, take)
            offset += take


class BytesContent(Content):
    """Content held as actual bytes."""

    def __init__(self, data: bytes):
        self._data = bytes(data)
        self.size = len(self._data)

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        return self._data[offset : offset + length]


class SyntheticContent(Content):
    """Deterministic pseudo-random content of arbitrary size.

    The content is a seeded 64 KiB random block repeated (with the
    repetition index mixed into each block's first 8 bytes so distinct
    positions differ). Reads are O(length).
    """

    BLOCK = 65536

    def __init__(self, size: int, seed: int = 0):
        if size < 0:
            raise ValueError("size must be >= 0")
        self.size = size
        self.seed = seed
        self._block = random.Random(seed).randbytes(self.BLOCK)

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        end = min(offset + length, self.size)
        if offset >= end:
            return b""
        out = bytearray()
        position = offset
        while position < end:
            block_index, block_offset = divmod(position, self.BLOCK)
            take = min(self.BLOCK - block_offset, end - position)
            piece = bytearray(
                self._block[block_offset : block_offset + take]
            )
            # Mix the block index into the first 8 bytes of every block
            # so repeated blocks are still distinguishable.
            stamp = block_index.to_bytes(8, "little")
            for i in range(min(8 - block_offset, take) if block_offset < 8 else 0):
                piece[i] ^= stamp[block_offset + i]
            out.extend(piece)
            position += take
        return bytes(out)


class ZeroContent(Content):
    """All-zero content of arbitrary size.

    The cheapest possible payload source: used by the large-scale
    benchmarks where timing (sizes, offsets, request counts) matters
    but byte values do not.
    """

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be >= 0")
        self.size = size

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        end = min(offset + length, self.size)
        return bytes(max(0, end - offset))


class StoredObject:
    """An object plus its HTTP-visible metadata."""

    _etag_counter = 0

    def __init__(
        self,
        path: str,
        content: Content,
        content_type: str = "application/octet-stream",
        mtime: float = 0.0,
        version: Optional[int] = None,
    ):
        self.path = path
        self.content = content
        self.content_type = content_type
        self.mtime = mtime
        if version is None:
            # Standalone construction: fall back to a process-global
            # counter. Stores pass their own version so two identically
            # seeded runs mint identical ETags (chaos-run determinism).
            StoredObject._etag_counter += 1
            version = StoredObject._etag_counter
        self.etag = f'"obj-{version}-{content.size}"'
        self._checksums: Dict[str, str] = {}

    @property
    def size(self) -> int:
        return self.content.size

    def checksum(self, algo: str = "adler32") -> str:
        """Checksum of the full content, computed once and cached."""
        algo = algo.lower()
        if algo not in self._checksums:
            if algo == "adler32":
                self._checksums[algo] = self.content.adler32()
            elif algo == "md5":
                self._checksums[algo] = self.content.md5()
            else:
                raise StoreError(f"unsupported checksum algo {algo!r}")
        return self._checksums[algo]


def _normalise(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    if len(path) > 1 and path.endswith("/"):
        path = path[:-1]
    return path


class ObjectStore:
    """Hierarchical object store with implicit parent collections."""

    def __init__(self, clock=None):
        self._objects: Dict[str, StoredObject] = {}
        self._collections = {"/"}
        #: Callable returning "now" for mtimes (injected so simulated
        #: servers stamp simulated time).
        self.clock = clock or (lambda: 0.0)
        self.bytes_read = 0
        self.bytes_written = 0
        self._version = 0

    # -- write path -------------------------------------------------------------

    def put(
        self,
        path: str,
        content,
        content_type: str = "application/octet-stream",
    ) -> StoredObject:
        """Create or replace the object at ``path``.

        ``content`` may be raw bytes or any :class:`Content`.
        """
        path = _normalise(path)
        if path in self._collections and path != "/":
            raise StoreError(f"{path} is a collection")
        if not isinstance(content, Content):
            content = BytesContent(content)
        self._version += 1
        obj = StoredObject(
            path, content, content_type, mtime=self.clock(),
            version=self._version,
        )
        self._ensure_parents(path)
        self._objects[path] = obj
        self.bytes_written += content.size
        return obj

    def mkcol(self, path: str) -> None:
        """Create a collection (error if it exists or parent missing)."""
        path = _normalise(path)
        if path in self._collections or path in self._objects:
            raise StoreError(f"{path} already exists")
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._collections:
            raise StoreError(f"parent collection {parent} missing")
        self._collections.add(path)

    def delete(self, path: str) -> None:
        """Delete an object or an *empty* collection."""
        path = _normalise(path)
        if path in self._objects:
            del self._objects[path]
            return
        if path in self._collections:
            if path == "/":
                raise StoreError("cannot delete the root collection")
            if list(self.list_collection(path)):
                raise StoreError(f"collection {path} not empty")
            self._collections.remove(path)
            return
        raise StoreError(f"no such object: {path}")

    def ensure_collection(self, path: str) -> None:
        """Create ``path`` (and any missing parents) as a collection."""
        path = _normalise(path)
        if path in self._objects:
            raise StoreError(f"{path} is an object")
        current = ""
        for part in path.split("/")[1:]:
            if part:
                current += "/" + part
                self._collections.add(current)

    def remove_tree(self, path: str) -> None:
        """Delete an object, or a collection and everything under it."""
        path = _normalise(path)
        if path in self._objects:
            del self._objects[path]
            return
        if path not in self._collections:
            raise StoreError(f"no such object: {path}")
        if path == "/":
            raise StoreError("cannot delete the root collection")
        prefix = path + "/"
        for candidate in [
            p for p in self._objects if p.startswith(prefix)
        ]:
            del self._objects[candidate]
        for candidate in [
            c for c in self._collections if c.startswith(prefix)
        ]:
            self._collections.discard(candidate)
        self._collections.remove(path)

    def _ensure_parents(self, path: str) -> None:
        parts = path.split("/")[1:-1]
        current = ""
        for part in parts:
            current += "/" + part
            self._collections.add(current)

    # -- read path ----------------------------------------------------------------

    def get(self, path: str) -> StoredObject:
        path = _normalise(path)
        try:
            return self._objects[path]
        except KeyError:
            raise StoreError(f"no such object: {path}") from None

    def read(self, path: str, offset: int = 0, length: int = -1) -> bytes:
        """Read a byte range of an object (whole object if length < 0)."""
        obj = self.get(path)
        if length < 0:
            length = obj.size - offset
        data = obj.content.read(offset, length)
        self.bytes_read += len(data)
        return data

    def exists(self, path: str) -> bool:
        path = _normalise(path)
        return path in self._objects or path in self._collections

    def is_collection(self, path: str) -> bool:
        return _normalise(path) in self._collections

    def stat(self, path: str) -> Tuple[int, float, bool]:
        """(size, mtime, is_collection) for ``path``."""
        path = _normalise(path)
        if path in self._objects:
            obj = self._objects[path]
            return (obj.size, obj.mtime, False)
        if path in self._collections:
            return (0, 0.0, True)
        raise StoreError(f"no such object: {path}")

    def list_collection(self, path: str) -> List[str]:
        """Immediate member paths of a collection, sorted."""
        path = _normalise(path)
        if path not in self._collections:
            raise StoreError(f"no such collection: {path}")
        prefix = "/" if path == "/" else path + "/"
        members = set()
        for candidate in list(self._objects) + list(self._collections):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix) :]
                members.add(prefix + rest.split("/", 1)[0])
        return sorted(members)

    def __len__(self) -> int:
        return len(self._objects)
