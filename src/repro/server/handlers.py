"""Pure request handlers of the storage server (a DPM-like endpoint).

:class:`StorageApp.handle` maps one :class:`~repro.http.Request` to a
:class:`ServedResponse` without any I/O — the serve loops in
:mod:`repro.server.app` drive it over simulated or real transports.

Supported surface: GET (full / single range / multi range / metalink
negotiation / redirect mode), HEAD, PUT (whole-object with If-Match,
or ranged ``Content-Range`` chunk uploads), DELETE, OPTIONS, MKCOL,
PROPFIND (depth 0/1) and COPY/MOVE — local, plus WLCG-style
third-party COPY in pull (``Source`` header) and push (remote
``Destination``) modes, where this server becomes the active side of a
multi-stream site-to-site transfer (:mod:`repro.core.tpc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import HttpParseError, HttpProtocolError
from repro.http import Headers, Request, Response, Url
from repro.http.ranges import parse_content_range
from repro.metalink import (
    METALINK_MEDIA_TYPE,
    Metalink,
    MetalinkFile,
    MetalinkUrl,
    write_metalink,
)
from repro.server.faults import FaultPolicy
from repro.server.objectstore import ObjectStore, StoreError
from repro.server.rangeserver import plan_range_response
from repro.server.webdav import DavResource, build_multistatus

__all__ = ["ServerConfig", "ServedResponse", "StorageApp"]


@dataclass
class ServerConfig:
    """Behavioural knobs of the storage server."""

    server_name: str = "repro-dpm/1.0"
    #: Honour HTTP keep-alive (off = HTTP/1.0-style close per request).
    keepalive: bool = True
    #: Close the connection after this many requests (None = unlimited).
    max_requests_per_connection: Optional[int] = None
    #: Close kept-alive connections idle for longer than this (seconds).
    keepalive_idle: float = 30.0
    #: Per-request fixed service overhead in seconds (CPU + queueing).
    service_overhead: float = 0.0005
    #: Storage backend streaming rate in bytes/second (disk array).
    disk_bandwidth: float = 400e6
    #: Advertise and honour multi-range requests.
    multirange: bool = True
    #: Ranges beyond this count are answered with the full object.
    max_ranges: int = 256
    #: DPM head-node mode: redirect data requests to this base URL.
    redirect_base: Optional[str] = None
    #: Bytes the server sends per write call when streaming.
    send_chunk: int = 262144
    #: TLS cost model; None = plain http (see concurrency.tlsmodel).
    tls: Optional[object] = None
    #: Serve the Prometheus text exposition of the app's registry on
    #: GET of this path (e.g. ``"/metrics"``); None = disabled.
    metrics_path: Optional[str] = None
    #: ``Cache-Control`` header attached to 200/206/304 GET and HEAD
    #: responses (e.g. ``"max-age=120"``); None = no header.
    cache_control: Optional[str] = None
    #: Mounted :class:`~repro.obs.collector.TelemetryCollector`: the
    #: connection loop ingests ``POST <telemetry_path>`` JSONL batches
    #: into it (works for every app served by this config — storage,
    #: proxy, flat-object, or a standalone collector node); None =
    #: telemetry ingest disabled.
    collector: Optional[object] = None
    #: Mount path of the telemetry ingest endpoint.
    telemetry_path: str = "/v1/telemetry"
    #: Default stream count for third-party copies (no
    #: ``X-Number-Of-Streams`` header on the COPY).
    tpc_streams: int = 4
    #: Hard cap on client-requested TPC stream counts.
    tpc_max_streams: int = 16
    #: Chunk size of third-party-copy ranged transfers.
    tpc_chunk: int = 8 * 1024 * 1024


@dataclass
class ServedResponse:
    """A response plus serving directives for the connection loop."""

    response: Response
    #: Lazily generated body chunks (used instead of ``response.body``).
    stream: Optional[Iterator[bytes]] = None
    #: Total body size when streaming.
    stream_length: int = 0
    #: Simulated service time the loop must Sleep before replying.
    service_time: float = 0.0
    #: Reset the connection after sending ~half the body (fault).
    reset_midway: bool = False
    #: Deferred work: an effect sub-op the connection loop runs before
    #: replying; its return value (a Response) replaces ``response``.
    #: Used by operations that must do I/O of their own, e.g. HTTP
    #: third-party copy pulling from a remote source.
    deferred: Optional[Callable] = None

    @property
    def body_length(self) -> int:
        return (
            self.stream_length
            if self.stream is not None
            else len(self.response.body)
        )


class _PartialUpload:
    """Accumulator for one ranged (``Content-Range``) upload."""

    __slots__ = ("total", "buffer", "spans", "content_type")

    def __init__(self, total: int, content_type: str):
        self.total = total
        self.buffer = bytearray(total)
        #: Received byte spans, kept merged and sorted.
        self.spans: List[Tuple[int, int]] = []
        self.content_type = content_type

    def write(self, offset: int, data: bytes) -> None:
        self.buffer[offset:offset + len(data)] = data
        merged: List[Tuple[int, int]] = []
        for start, length in sorted(self.spans + [(offset, len(data))]):
            if merged and start <= merged[-1][0] + merged[-1][1]:
                end = max(merged[-1][0] + merged[-1][1], start + length)
                merged[-1] = (merged[-1][0], end - merged[-1][0])
            else:
                merged.append((start, length))
        self.spans = merged

    @property
    def complete(self) -> bool:
        return self.spans == [(0, self.total)]


class StorageApp:
    """The storage service: object store + HTTP semantics + faults."""

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[ServerConfig] = None,
        replicas: Optional[Dict[str, List[str]]] = None,
        faults: Optional[FaultPolicy] = None,
        metrics=None,
    ):
        self.store = store
        self.config = config or ServerConfig()
        #: path -> replica URLs advertised via Metalink.
        self.replicas = replicas if replicas is not None else {}
        self.faults = faults
        #: Optional :class:`~repro.obs.MetricsRegistry`: per-method and
        #: per-status request counts land here alongside the legacy
        #: ``requests_by_method`` dict.
        self.metrics = metrics
        self.requests_handled = 0
        self.requests_by_method: Dict[str, int] = {}
        #: davix context for third-party-copy transfers (lazy).
        self._tpc_context = None
        #: Optional :class:`~repro.core.RequestParams` for the TPC
        #: context (e.g. tuned ``TcpOptions`` for a fat site link).
        self.tpc_params = None
        #: In-progress ranged uploads: path -> _PartialUpload.
        self._uploads: Dict[str, _PartialUpload] = {}
        #: Optional :class:`~repro.server.accesslog.AccessLog`.
        self.access_log = None
        #: Optional :class:`~repro.obs.Tracer`: the serve loop starts a
        #: ``server-request`` span per request, joined to the client's
        #: trace when a ``Traceparent`` header arrives.
        self.tracer = None
        #: Optional :class:`~repro.obs.EventLog` for server-side wide
        #: events (one per served request).
        self.events = None

    # -- entry point -----------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        """Compute the response for ``request`` (no I/O, no blocking)."""
        if (
            self.config.metrics_path is not None
            and request.method == "GET"
            and request.path == self.config.metrics_path
        ):
            # A scrape, not workload traffic: answered before the
            # request counters and fault policy so it never perturbs
            # the series it exposes.
            return self._metrics_response(request)
        self.requests_handled += 1
        self.requests_by_method[request.method] = (
            self.requests_by_method.get(request.method, 0) + 1
        )
        if self.metrics is not None:
            self.metrics.counter(
                "server.requests_total", method=request.method
            ).inc()

        fault = (
            self.faults.next_action(request.path) if self.faults else None
        )
        if fault is not None and fault.kind == "error":
            return self._finish(
                request, self._error(fault.status, "injected fault")
            )

        handler = getattr(
            self, f"_handle_{request.method.lower()}", None
        )
        if handler is None:
            # RFC 7231 §6.5.5: a 405 must advertise what *would* work.
            response = self._error(
                405, f"method {request.method} not allowed"
            )
            response.headers.set(
                "Allow", self._allowed_methods(request.path)
            )
            served = ServedResponse(response)
        else:
            try:
                served = handler(request)
            except StoreError as exc:
                served = ServedResponse(self._error(409, str(exc)))
        if not isinstance(served, ServedResponse):
            served = ServedResponse(served)

        if fault is not None:
            if fault.kind == "slow":
                served.service_time += fault.delay
            elif fault.kind == "reset":
                served.reset_midway = True
        return self._finish(request, served)

    def _finish(self, request, served) -> ServedResponse:
        if not isinstance(served, ServedResponse):
            served = ServedResponse(served)
        if self.metrics is not None:
            self.metrics.counter(
                "server.responses_total",
                status=str(served.response.status),
            ).inc()
        served.response.headers.setdefault(
            "Server", self.config.server_name
        )
        if (
            self.config.cache_control is not None
            and request.method in ("GET", "HEAD")
            and served.response.status in (200, 206, 304)
        ):
            served.response.headers.setdefault(
                "Cache-Control", self.config.cache_control
            )
        served.service_time += self.config.service_overhead
        served.service_time += (
            served.body_length / self.config.disk_bandwidth
        )
        return served

    def _metrics_response(self, request: Request) -> ServedResponse:
        """The Prometheus text exposition of this app's registry."""
        from repro.obs.export import (
            PROMETHEUS_CONTENT_TYPE,
            prometheus_exposition,
            window_to_prometheus,
        )

        text = (
            prometheus_exposition(self.metrics)
            if self.metrics is not None
            else ""
        )
        window = getattr(self.access_log, "window", None)
        if window is not None:
            text += window_to_prometheus(
                "server_request_seconds_window", window.snapshot()
            )
        body = text.encode("utf-8")
        headers = Headers(
            [
                ("Content-Type", PROMETHEUS_CONTENT_TYPE),
                ("Content-Length", len(body)),
            ]
        )
        return self._finish(
            request, ServedResponse(Response(200, headers, body))
        )

    # -- method handlers ---------------------------------------------------------

    def _handle_get(self, request: Request) -> ServedResponse:
        if self._wants_metalink(request):
            return ServedResponse(self._metalink_response(request))
        redirect = self._maybe_redirect(request)
        if redirect is not None:
            return ServedResponse(redirect)
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._not_found(request.path))

        if self._not_modified(request, obj):
            headers = Headers([("ETag", obj.etag)])
            return ServedResponse(Response(304, headers))
        # RFC 7232 §3.1: If-Match guards reads against version churn —
        # TPC pull streams send it on every ranged chunk.
        if_match = request.headers.get("If-Match")
        if if_match is not None and if_match.strip() != obj.etag:
            return ServedResponse(self._error(412, "ETag mismatch"))

        range_header = request.headers.get("Range")
        if range_header is not None:
            # RFC 7233 §3.2: an If-Range validator that no longer
            # matches means the Range is against a stale version —
            # ignore it and send the full current representation.
            if_range = request.headers.get("If-Range")
            if if_range is not None and if_range.strip() != obj.etag:
                range_header = None
        plan = plan_range_response(
            obj,
            range_header,
            multirange_supported=self.config.multirange,
            max_ranges=self.config.max_ranges,
        )
        if plan.status == 416:
            return ServedResponse(Response(416, plan.headers))
        digest = self._digest_header(request, obj)
        if digest is not None:
            # RFC 3230: the digest is of the *representation* (the
            # whole object), even on a partial response.
            plan.headers.set("Digest", digest)
        if plan.multipart_boundary is not None:
            body = plan.build_multipart_body(obj)
            self.store.bytes_read += plan.body_bytes
            return ServedResponse(
                Response(206, plan.headers, body)
            )
        offset, length = plan.segments[0]
        stream = self._stream_object(obj, offset, length)
        return ServedResponse(
            Response(plan.status, plan.headers),
            stream=stream,
            stream_length=length,
        )

    def _handle_head(self, request: Request) -> ServedResponse:
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._not_found(request.path))
        headers = Headers(
            [
                ("Accept-Ranges", "bytes"),
                ("Content-Type", obj.content_type),
                ("Content-Length", obj.size),
                ("ETag", obj.etag),
            ]
        )
        digest = self._digest_header(request, obj)
        if digest is not None:
            headers.set("Digest", digest)
        return ServedResponse(Response(200, headers))

    def _handle_put(self, request: Request) -> ServedResponse:
        content_range = request.headers.get("Content-Range")
        if content_range is not None:
            return self._ranged_put(request, content_range)
        if_match = request.headers.get("If-Match")
        if if_match is not None:
            try:
                current = self.store.get(request.path)
            except StoreError:
                return ServedResponse(
                    self._error(412, "If-Match on missing resource")
                )
            if current.etag != if_match:
                return ServedResponse(
                    self._error(412, "ETag mismatch")
                )
        existed = self.store.exists(request.path)
        obj = self.store.put(
            request.path,
            request.body,
            content_type=request.headers.get(
                "Content-Type", "application/octet-stream"
            ),
        )
        status = 204 if existed else 201
        headers = Headers([("ETag", obj.etag)])
        digest = self._digest_header(request, obj)
        if digest is not None:
            headers.set("Digest", digest)
        return ServedResponse(Response(status, headers))

    def _ranged_put(
        self, request: Request, content_range: str
    ) -> ServedResponse:
        """One chunk of a striped upload (TPC push mode).

        Chunks accumulate per path; once the spans cover the whole
        announced total, the object commits atomically and the reply
        carries the committed ETag (and ``Digest`` when asked for).
        Until then each chunk is answered ``202 Accepted``.
        """
        try:
            offset, length, total = parse_content_range(content_range)
        except (HttpParseError, HttpProtocolError) as exc:
            return ServedResponse(self._error(400, str(exc)))
        if total is None:
            return ServedResponse(
                self._error(400, "Content-Range PUT requires a total")
            )
        if length != len(request.body) or offset + length > total:
            return ServedResponse(
                self._error(400, "Content-Range does not match body")
            )
        path = request.path
        upload = self._uploads.get(path)
        if upload is None or upload.total != total:
            upload = _PartialUpload(
                total,
                request.headers.get(
                    "Content-Type", "application/octet-stream"
                ),
            )
            self._uploads[path] = upload
        upload.write(offset, request.body)
        if not upload.complete:
            return ServedResponse(Response(202))
        del self._uploads[path]
        existed = self.store.exists(path)
        obj = self.store.put(
            path, bytes(upload.buffer), upload.content_type
        )
        headers = Headers([("ETag", obj.etag)])
        digest = self._digest_header(request, obj)
        if digest is not None:
            headers.set("Digest", digest)
        return ServedResponse(
            Response(204 if existed else 201, headers)
        )

    def _handle_delete(self, request: Request) -> ServedResponse:
        try:
            self.store.delete(request.path)
        except StoreError as exc:
            if "no such" in str(exc):
                return ServedResponse(self._not_found(request.path))
            return ServedResponse(self._error(409, str(exc)))
        return ServedResponse(Response(204))

    def _handle_options(self, request: Request) -> ServedResponse:
        headers = Headers(
            [
                ("Allow", self._allowed_methods(request.path)),
                ("DAV", "1"),
            ]
        )
        if (
            self.store.exists(request.path)
            and not self.store.is_collection(request.path)
        ):
            headers.set("Accept-Ranges", "bytes")
        return ServedResponse(Response(200, headers))

    def _allowed_methods(self, path: str) -> str:
        """The verbs actually supported at ``path``, per resource type.

        COPY appears everywhere: files and collections copy out, and a
        missing path is a valid pull-mode TPC destination.
        """
        if not self.store.exists(path):
            return "OPTIONS, PUT, MKCOL, COPY"
        if self.store.is_collection(path):
            return "OPTIONS, PROPFIND, DELETE, COPY, MOVE"
        return (
            "GET, HEAD, OPTIONS, PROPFIND, PUT, DELETE, COPY, MOVE"
        )

    def _handle_mkcol(self, request: Request) -> ServedResponse:
        try:
            self.store.mkcol(request.path)
        except StoreError as exc:
            return ServedResponse(self._error(409, str(exc)))
        return ServedResponse(Response(201))

    def _handle_copy(self, request: Request) -> ServedResponse:
        source_url = request.headers.get("Source")
        if source_url is not None:
            return self._third_party_copy(request, source_url, "pull")
        destination = request.headers.get("Destination")
        if destination is not None and self._is_remote_destination(
            request, destination
        ):
            return self._third_party_copy(request, destination, "push")
        return self._copy_or_move(request, remove_source=False)

    def _is_remote_destination(
        self, request: Request, destination: str
    ) -> bool:
        """Does the Destination header name another origin?"""
        try:
            url = Url.parse(destination)
        except Exception:
            return False  # bare path: always local
        host = request.headers.get("Host")
        if host is None:
            return False
        return url.netloc != host and url.host != host

    def _tpc(self):
        """The lazy davix context this server transfers through."""
        if self._tpc_context is None:
            from repro.core.context import Context

            self._tpc_context = Context(
                params=self.tpc_params, tracer=self.tracer
            )
        return self._tpc_context

    def _third_party_copy(
        self, request: Request, remote: str, mode: str
    ) -> ServedResponse:
        """WLCG-style HTTP third-party copy (pull or push mode).

        Pull: the client asks *this* server to fetch ``Source`` into
        ``request.path``. Push: the client asks this server to upload
        ``request.path`` to a remote ``Destination``. Either way the
        bytes flow site-to-site over N concurrent ranged streams
        without crossing the client's link; the transfer runs as
        deferred work (this server acts as a davix client towards its
        peer) and the pending COPY answers 202 with a perf-marker
        stream (:mod:`repro.core.tpc`).
        """
        from repro.core.tpc import TpcConfig, run_pull, run_push
        from repro.obs.propagation import (
            TRACEPARENT_HEADER,
            parse_traceparent,
        )

        path = request.path
        if mode == "push" and not self.store.exists(path):
            return ServedResponse(self._not_found(path))
        requested = request.headers.get_int("X-Number-Of-Streams")
        streams = (
            requested
            if requested is not None and requested > 0
            else self.config.tpc_streams
        )
        config = TpcConfig(
            streams=min(streams, self.config.tpc_max_streams),
            chunk_size=self.config.tpc_chunk,
        )
        trace_ctx = parse_traceparent(
            request.headers.get(TRACEPARENT_HEADER)
        )

        def transfer():
            run = run_pull if mode == "pull" else run_push
            response = yield from run(
                self._tpc(),
                self.store,
                path,
                remote,
                config,
                metrics=self.metrics,
                events=self.events,
                trace_ctx=trace_ctx,
            )
            return response

        return ServedResponse(Response(500), deferred=transfer)

    def _handle_move(self, request: Request) -> ServedResponse:
        return self._copy_or_move(request, remove_source=True)

    def _copy_or_move(
        self, request: Request, remove_source: bool
    ) -> ServedResponse:
        """RFC 4918 COPY/MOVE with a Destination header."""
        destination = request.headers.get("Destination")
        if destination is None:
            return ServedResponse(
                self._error(400, "COPY/MOVE without Destination header")
            )
        try:
            target = Url.parse(destination).decoded_path
        except Exception:
            target = destination  # tolerate a bare path
        overwrite = request.headers.get("Overwrite", "T").upper() != "F"
        if not self.store.exists(request.path):
            return ServedResponse(self._not_found(request.path))
        existed = self.store.exists(target)
        if existed and not overwrite:
            return ServedResponse(
                self._error(412, f"destination exists: {target}")
            )
        if self.store.is_collection(request.path):
            # Deep copy (RFC 4918 COPY on collections is Depth
            # infinity by default).
            if existed:
                if self.store.is_collection(target):
                    self.store.remove_tree(target)
                else:
                    self.store.delete(target)
            self._copy_tree(request.path, target)
            if remove_source:
                self.store.remove_tree(request.path)
            return ServedResponse(Response(204 if existed else 201))
        source = self.store.get(request.path)
        self.store.put(target, source.content, source.content_type)
        if remove_source:
            self.store.delete(request.path)
        return ServedResponse(Response(204 if existed else 201))

    def _copy_tree(self, source: str, target: str) -> None:
        """Recursively copy a collection (empty members included)."""
        self.store.ensure_collection(target)
        for member in self.store.list_collection(source):
            child = target.rstrip("/") + "/" + member.rsplit("/", 1)[-1]
            if self.store.is_collection(member):
                self._copy_tree(member, child)
            else:
                obj = self.store.get(member)
                self.store.put(child, obj.content, obj.content_type)

    def _handle_propfind(self, request: Request) -> ServedResponse:
        depth = request.headers.get("Depth", "infinity").strip()
        if depth not in ("0", "1"):
            return ServedResponse(
                self._error(403, f"Depth {depth} not supported")
            )
        if not self.store.exists(request.path):
            return ServedResponse(self._not_found(request.path))

        resources = [self._dav_resource(request.path)]
        if depth == "1" and self.store.is_collection(request.path):
            for member in self.store.list_collection(request.path):
                resources.append(self._dav_resource(member))
        body = build_multistatus(resources)
        headers = Headers(
            [("Content-Type", 'application/xml; charset="utf-8"')]
        )
        return ServedResponse(Response(207, headers, body))

    # -- helpers ------------------------------------------------------------------

    def _digest_header(self, request: Request, obj) -> Optional[str]:
        """RFC 3230: answer ``Want-Digest`` with a supported algo."""
        want = request.headers.get("Want-Digest")
        if want is None:
            return None
        for token in want.split(","):
            algo = token.split(";")[0].strip().lower()
            if algo in ("adler32", "md5"):
                return f"{algo}={obj.checksum(algo)}"
        return None

    def _stream_object(self, obj, offset: int, length: int):
        """Yield the object range in ``send_chunk`` pieces."""
        chunk = self.config.send_chunk
        end = offset + length
        position = offset
        while position < end:
            take = min(chunk, end - position)
            data = obj.content.read(position, take)
            self.store.bytes_read += len(data)
            position += take
            yield data

    def _dav_resource(self, path: str) -> DavResource:
        size, mtime, is_collection = self.store.stat(path)
        etag = None
        if not is_collection:
            etag = self.store.get(path).etag
        href = path + "/" if is_collection and path != "/" else path
        return DavResource(
            href=href,
            is_collection=is_collection,
            size=size,
            mtime=mtime,
            etag=etag,
        )

    def _wants_metalink(self, request: Request) -> bool:
        if "metalink" in request.query.lower():
            return True
        accept = request.headers.get("Accept", "")
        return METALINK_MEDIA_TYPE in accept

    def _metalink_response(self, request: Request) -> Response:
        urls = self.replicas.get(request.path)
        if not urls:
            return self._not_found(request.path)
        entry = MetalinkFile(
            name=request.path.rsplit("/", 1)[-1] or "/",
            urls=[
                MetalinkUrl(url=url, priority=index + 1)
                for index, url in enumerate(urls)
            ],
        )
        try:
            obj = self.store.get(request.path)
        except StoreError:
            pass
        else:
            entry.size = obj.size
            entry.hashes["adler32"] = obj.checksum("adler32")
        body = write_metalink(Metalink(files=[entry]))
        headers = Headers([("Content-Type", METALINK_MEDIA_TYPE)])
        return Response(200, headers, body)

    def _maybe_redirect(self, request: Request) -> Optional[Response]:
        """DPM head-node mode: send data traffic to the disk node."""
        if self.config.redirect_base is None:
            return None
        if "direct" in request.query.lower():
            return None
        target = Url.parse(self.config.redirect_base).with_path(
            request.path, encode=False
        )
        location = str(target) + "?direct=1"
        return Response(302, Headers([("Location", location)]))

    def _not_modified(self, request: Request, obj) -> bool:
        etags = request.headers.get("If-None-Match")
        if etags is not None:
            candidates = [tag.strip() for tag in etags.split(",")]
            return "*" in candidates or obj.etag in candidates
        since = request.headers.get("If-Modified-Since")
        if since is not None:
            from repro.http.dates import parse_http_date

            threshold = parse_http_date(since)
            if threshold is not None:
                return obj.mtime <= threshold
        return False

    def _not_found(self, path: str) -> Response:
        body = f"resource not found: {path}\n".encode()
        return Response(
            404, Headers([("Content-Type", "text/plain")]), body
        )

    def _error(self, status: int, message: str) -> Response:
        from repro.http.status import allows_body

        if not allows_body(status):
            return Response(status)
        body = (message + "\n").encode()
        return Response(
            status, Headers([("Content-Type", "text/plain")]), body
        )
