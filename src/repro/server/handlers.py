"""Pure request handlers of the storage server (a DPM-like endpoint).

:class:`StorageApp.handle` maps one :class:`~repro.http.Request` to a
:class:`ServedResponse` without any I/O — the serve loops in
:mod:`repro.server.app` drive it over simulated or real transports.

Supported surface: GET (full / single range / multi range / metalink
negotiation / redirect mode), HEAD, PUT (with If-Match), DELETE,
OPTIONS, MKCOL and PROPFIND (depth 0/1) — the set davix exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.http import Headers, Request, Response, Url
from repro.metalink import (
    METALINK_MEDIA_TYPE,
    Metalink,
    MetalinkFile,
    MetalinkUrl,
    write_metalink,
)
from repro.server.faults import FaultPolicy
from repro.server.objectstore import ObjectStore, StoreError
from repro.server.rangeserver import plan_range_response
from repro.server.webdav import DavResource, build_multistatus

__all__ = ["ServerConfig", "ServedResponse", "StorageApp"]


@dataclass
class ServerConfig:
    """Behavioural knobs of the storage server."""

    server_name: str = "repro-dpm/1.0"
    #: Honour HTTP keep-alive (off = HTTP/1.0-style close per request).
    keepalive: bool = True
    #: Close the connection after this many requests (None = unlimited).
    max_requests_per_connection: Optional[int] = None
    #: Close kept-alive connections idle for longer than this (seconds).
    keepalive_idle: float = 30.0
    #: Per-request fixed service overhead in seconds (CPU + queueing).
    service_overhead: float = 0.0005
    #: Storage backend streaming rate in bytes/second (disk array).
    disk_bandwidth: float = 400e6
    #: Advertise and honour multi-range requests.
    multirange: bool = True
    #: Ranges beyond this count are answered with the full object.
    max_ranges: int = 256
    #: DPM head-node mode: redirect data requests to this base URL.
    redirect_base: Optional[str] = None
    #: Bytes the server sends per write call when streaming.
    send_chunk: int = 262144
    #: TLS cost model; None = plain http (see concurrency.tlsmodel).
    tls: Optional[object] = None
    #: Serve the Prometheus text exposition of the app's registry on
    #: GET of this path (e.g. ``"/metrics"``); None = disabled.
    metrics_path: Optional[str] = None


@dataclass
class ServedResponse:
    """A response plus serving directives for the connection loop."""

    response: Response
    #: Lazily generated body chunks (used instead of ``response.body``).
    stream: Optional[Iterator[bytes]] = None
    #: Total body size when streaming.
    stream_length: int = 0
    #: Simulated service time the loop must Sleep before replying.
    service_time: float = 0.0
    #: Reset the connection after sending ~half the body (fault).
    reset_midway: bool = False
    #: Deferred work: an effect sub-op the connection loop runs before
    #: replying; its return value (a Response) replaces ``response``.
    #: Used by operations that must do I/O of their own, e.g. HTTP
    #: third-party copy pulling from a remote source.
    deferred: Optional[Callable] = None

    @property
    def body_length(self) -> int:
        return (
            self.stream_length
            if self.stream is not None
            else len(self.response.body)
        )


class StorageApp:
    """The storage service: object store + HTTP semantics + faults."""

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[ServerConfig] = None,
        replicas: Optional[Dict[str, List[str]]] = None,
        faults: Optional[FaultPolicy] = None,
        metrics=None,
    ):
        self.store = store
        self.config = config or ServerConfig()
        #: path -> replica URLs advertised via Metalink.
        self.replicas = replicas if replicas is not None else {}
        self.faults = faults
        #: Optional :class:`~repro.obs.MetricsRegistry`: per-method and
        #: per-status request counts land here alongside the legacy
        #: ``requests_by_method`` dict.
        self.metrics = metrics
        self.requests_handled = 0
        self.requests_by_method: Dict[str, int] = {}
        #: davix context for third-party-copy pulls (lazy).
        self._tpc_context = None
        #: Optional :class:`~repro.server.accesslog.AccessLog`.
        self.access_log = None
        #: Optional :class:`~repro.obs.Tracer`: the serve loop starts a
        #: ``server-request`` span per request, joined to the client's
        #: trace when a ``Traceparent`` header arrives.
        self.tracer = None
        #: Optional :class:`~repro.obs.EventLog` for server-side wide
        #: events (one per served request).
        self.events = None

    # -- entry point -----------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        """Compute the response for ``request`` (no I/O, no blocking)."""
        if (
            self.config.metrics_path is not None
            and request.method == "GET"
            and request.path == self.config.metrics_path
        ):
            # A scrape, not workload traffic: answered before the
            # request counters and fault policy so it never perturbs
            # the series it exposes.
            return self._metrics_response(request)
        self.requests_handled += 1
        self.requests_by_method[request.method] = (
            self.requests_by_method.get(request.method, 0) + 1
        )
        if self.metrics is not None:
            self.metrics.counter(
                "server.requests_total", method=request.method
            ).inc()

        fault = (
            self.faults.next_action(request.path) if self.faults else None
        )
        if fault is not None and fault.kind == "error":
            return self._finish(
                request, self._error(fault.status, "injected fault")
            )

        handler = getattr(
            self, f"_handle_{request.method.lower()}", None
        )
        if handler is None:
            served = ServedResponse(
                self._error(405, f"method {request.method} not allowed")
            )
        else:
            try:
                served = handler(request)
            except StoreError as exc:
                served = ServedResponse(self._error(409, str(exc)))
        if not isinstance(served, ServedResponse):
            served = ServedResponse(served)

        if fault is not None:
            if fault.kind == "slow":
                served.service_time += fault.delay
            elif fault.kind == "reset":
                served.reset_midway = True
        return self._finish(request, served)

    def _finish(self, request, served) -> ServedResponse:
        if not isinstance(served, ServedResponse):
            served = ServedResponse(served)
        if self.metrics is not None:
            self.metrics.counter(
                "server.responses_total",
                status=str(served.response.status),
            ).inc()
        served.response.headers.setdefault(
            "Server", self.config.server_name
        )
        served.service_time += self.config.service_overhead
        served.service_time += (
            served.body_length / self.config.disk_bandwidth
        )
        return served

    def _metrics_response(self, request: Request) -> ServedResponse:
        """The Prometheus text exposition of this app's registry."""
        from repro.obs.export import (
            PROMETHEUS_CONTENT_TYPE,
            prometheus_exposition,
            window_to_prometheus,
        )

        text = (
            prometheus_exposition(self.metrics)
            if self.metrics is not None
            else ""
        )
        window = getattr(self.access_log, "window", None)
        if window is not None:
            text += window_to_prometheus(
                "server_request_seconds_window", window.snapshot()
            )
        body = text.encode("utf-8")
        headers = Headers(
            [
                ("Content-Type", PROMETHEUS_CONTENT_TYPE),
                ("Content-Length", len(body)),
            ]
        )
        return self._finish(
            request, ServedResponse(Response(200, headers, body))
        )

    # -- method handlers ---------------------------------------------------------

    def _handle_get(self, request: Request) -> ServedResponse:
        if self._wants_metalink(request):
            return ServedResponse(self._metalink_response(request))
        redirect = self._maybe_redirect(request)
        if redirect is not None:
            return ServedResponse(redirect)
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._not_found(request.path))

        if self._not_modified(request, obj):
            headers = Headers([("ETag", obj.etag)])
            return ServedResponse(Response(304, headers))

        range_header = request.headers.get("Range")
        if range_header is not None:
            # RFC 7233 §3.2: an If-Range validator that no longer
            # matches means the Range is against a stale version —
            # ignore it and send the full current representation.
            if_range = request.headers.get("If-Range")
            if if_range is not None and if_range.strip() != obj.etag:
                range_header = None
        plan = plan_range_response(
            obj,
            range_header,
            multirange_supported=self.config.multirange,
            max_ranges=self.config.max_ranges,
        )
        if plan.status == 416:
            return ServedResponse(Response(416, plan.headers))
        if plan.multipart_boundary is not None:
            body = plan.build_multipart_body(obj)
            self.store.bytes_read += plan.body_bytes
            return ServedResponse(
                Response(206, plan.headers, body)
            )
        offset, length = plan.segments[0]
        stream = self._stream_object(obj, offset, length)
        return ServedResponse(
            Response(plan.status, plan.headers),
            stream=stream,
            stream_length=length,
        )

    def _handle_head(self, request: Request) -> ServedResponse:
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._not_found(request.path))
        headers = Headers(
            [
                ("Accept-Ranges", "bytes"),
                ("Content-Type", obj.content_type),
                ("Content-Length", obj.size),
                ("ETag", obj.etag),
            ]
        )
        return ServedResponse(Response(200, headers))

    def _handle_put(self, request: Request) -> ServedResponse:
        if_match = request.headers.get("If-Match")
        if if_match is not None:
            try:
                current = self.store.get(request.path)
            except StoreError:
                return ServedResponse(
                    self._error(412, "If-Match on missing resource")
                )
            if current.etag != if_match:
                return ServedResponse(
                    self._error(412, "ETag mismatch")
                )
        existed = self.store.exists(request.path)
        obj = self.store.put(
            request.path,
            request.body,
            content_type=request.headers.get(
                "Content-Type", "application/octet-stream"
            ),
        )
        status = 204 if existed else 201
        return ServedResponse(
            Response(status, Headers([("ETag", obj.etag)]))
        )

    def _handle_delete(self, request: Request) -> ServedResponse:
        try:
            self.store.delete(request.path)
        except StoreError as exc:
            if "no such" in str(exc):
                return ServedResponse(self._not_found(request.path))
            return ServedResponse(self._error(409, str(exc)))
        return ServedResponse(Response(204))

    def _handle_options(self, request: Request) -> ServedResponse:
        headers = Headers(
            [
                (
                    "Allow",
                    "GET, HEAD, PUT, DELETE, OPTIONS, PROPFIND, "
                    "MKCOL, COPY, MOVE",
                ),
                ("DAV", "1"),
                ("Accept-Ranges", "bytes"),
            ]
        )
        return ServedResponse(Response(200, headers))

    def _handle_mkcol(self, request: Request) -> ServedResponse:
        try:
            self.store.mkcol(request.path)
        except StoreError as exc:
            return ServedResponse(self._error(409, str(exc)))
        return ServedResponse(Response(201))

    def _handle_copy(self, request: Request) -> ServedResponse:
        source_url = request.headers.get("Source")
        if source_url is not None:
            return self._third_party_copy(request, source_url)
        return self._copy_or_move(request, remove_source=False)

    def _third_party_copy(
        self, request: Request, source_url: str
    ) -> ServedResponse:
        """WLCG-style HTTP third-party copy (pull mode).

        The client asks *this* server to fetch ``Source`` into
        ``request.path``; the transfer flows site-to-site without
        crossing the client's link. The pull runs as deferred work —
        this server acts as a davix client towards the source.
        """
        destination = request.path

        def pull():
            from repro.core.context import Context
            from repro.core.file import DavFile
            from repro.errors import DavixError, NetworkError

            if self._tpc_context is None:
                self._tpc_context = Context()
            try:
                data = yield from DavFile(
                    self._tpc_context, source_url
                ).read_all()
            except (DavixError, NetworkError) as exc:
                body = f"third-party copy failed: {exc}\n".encode()
                return Response(
                    502, Headers([("Content-Type", "text/plain")]), body
                )
            obj = self.store.put(destination, data)
            return Response(201, Headers([("ETag", obj.etag)]))

        return ServedResponse(Response(500), deferred=pull)

    def _handle_move(self, request: Request) -> ServedResponse:
        return self._copy_or_move(request, remove_source=True)

    def _copy_or_move(
        self, request: Request, remove_source: bool
    ) -> ServedResponse:
        """RFC 4918 COPY/MOVE with a Destination header."""
        destination = request.headers.get("Destination")
        if destination is None:
            return ServedResponse(
                self._error(400, "COPY/MOVE without Destination header")
            )
        try:
            target = Url.parse(destination).decoded_path
        except Exception:
            target = destination  # tolerate a bare path
        overwrite = request.headers.get("Overwrite", "T").upper() != "F"
        try:
            source = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._not_found(request.path))
        existed = self.store.exists(target)
        if existed and not overwrite:
            return ServedResponse(
                self._error(412, f"destination exists: {target}")
            )
        self.store.put(target, source.content, source.content_type)
        if remove_source:
            self.store.delete(request.path)
        return ServedResponse(Response(204 if existed else 201))

    def _handle_propfind(self, request: Request) -> ServedResponse:
        depth = request.headers.get("Depth", "infinity").strip()
        if depth not in ("0", "1"):
            return ServedResponse(
                self._error(403, f"Depth {depth} not supported")
            )
        if not self.store.exists(request.path):
            return ServedResponse(self._not_found(request.path))

        resources = [self._dav_resource(request.path)]
        if depth == "1" and self.store.is_collection(request.path):
            for member in self.store.list_collection(request.path):
                resources.append(self._dav_resource(member))
        body = build_multistatus(resources)
        headers = Headers(
            [("Content-Type", 'application/xml; charset="utf-8"')]
        )
        return ServedResponse(Response(207, headers, body))

    # -- helpers ------------------------------------------------------------------

    def _stream_object(self, obj, offset: int, length: int):
        """Yield the object range in ``send_chunk`` pieces."""
        chunk = self.config.send_chunk
        end = offset + length
        position = offset
        while position < end:
            take = min(chunk, end - position)
            data = obj.content.read(position, take)
            self.store.bytes_read += len(data)
            position += take
            yield data

    def _dav_resource(self, path: str) -> DavResource:
        size, mtime, is_collection = self.store.stat(path)
        etag = None
        if not is_collection:
            etag = self.store.get(path).etag
        href = path + "/" if is_collection and path != "/" else path
        return DavResource(
            href=href,
            is_collection=is_collection,
            size=size,
            mtime=mtime,
            etag=etag,
        )

    def _wants_metalink(self, request: Request) -> bool:
        if "metalink" in request.query.lower():
            return True
        accept = request.headers.get("Accept", "")
        return METALINK_MEDIA_TYPE in accept

    def _metalink_response(self, request: Request) -> Response:
        urls = self.replicas.get(request.path)
        if not urls:
            return self._not_found(request.path)
        entry = MetalinkFile(
            name=request.path.rsplit("/", 1)[-1] or "/",
            urls=[
                MetalinkUrl(url=url, priority=index + 1)
                for index, url in enumerate(urls)
            ],
        )
        try:
            obj = self.store.get(request.path)
        except StoreError:
            pass
        else:
            entry.size = obj.size
            entry.hashes["adler32"] = obj.checksum("adler32")
        body = write_metalink(Metalink(files=[entry]))
        headers = Headers([("Content-Type", METALINK_MEDIA_TYPE)])
        return Response(200, headers, body)

    def _maybe_redirect(self, request: Request) -> Optional[Response]:
        """DPM head-node mode: send data traffic to the disk node."""
        if self.config.redirect_base is None:
            return None
        if "direct" in request.query.lower():
            return None
        target = Url.parse(self.config.redirect_base).with_path(
            request.path, encode=False
        )
        location = str(target) + "?direct=1"
        return Response(302, Headers([("Location", location)]))

    def _not_modified(self, request: Request, obj) -> bool:
        etags = request.headers.get("If-None-Match")
        if etags is not None:
            candidates = [tag.strip() for tag in etags.split(",")]
            return "*" in candidates or obj.etag in candidates
        since = request.headers.get("If-Modified-Since")
        if since is not None:
            from repro.http.dates import parse_http_date

            threshold = parse_http_date(since)
            if threshold is not None:
                return obj.mtime <= threshold
        return False

    def _not_found(self, path: str) -> Response:
        body = f"resource not found: {path}\n".encode()
        return Response(
            404, Headers([("Content-Type", "text/plain")]), body
        )

    def _error(self, status: int, message: str) -> Response:
        from repro.http.status import allows_body

        if not allows_body(status):
            return Response(status)
        body = (message + "\n").encode()
        return Response(
            status, Headers([("Content-Type", "text/plain")]), body
        )
