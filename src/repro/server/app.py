"""Transport-facing serve loops of the storage server.

Written as effect generators so the identical code serves simulated
connections (benchmarks) and real sockets (integration tests, CLI).
Requests on one connection are processed strictly in order — which is
exactly HTTP/1.1 semantics, and what gives pipelining its head-of-line
blocking in the FIG1-HOL experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.concurrency import (
    Abort,
    Accept,
    Close,
    Now,
    Recv,
    Send,
    Sleep,
    Spawn,
)
from repro.concurrency.runtime import Runtime
from repro.errors import (
    ConnectionClosed,
    HttpParseError,
    NetworkError,
    TransferTimeout,
)
from repro.http import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    HttpParser,
    Request,
    serialize_response,
    serialize_response_head,
)
from repro.obs.propagation import TRACEPARENT_HEADER, parse_traceparent
from repro.server.handlers import ServedResponse, StorageApp

__all__ = ["serve_forever", "handle_connection", "HttpServer"]

#: Server-side keep-alive idle timeout (seconds).
KEEPALIVE_IDLE = 30.0


def _ingest_telemetry(collector, request: Request) -> ServedResponse:
    """Store one ``POST /v1/telemetry`` JSONL batch in the mounted
    collector; malformed lines fail the whole batch (400) so a sink
    bug is loud instead of silently thinning the trace."""
    from repro.http import Headers, Response

    try:
        accepted = collector.ingest_lines(
            request.body.decode("utf-8", "strict")
        )
    except (ValueError, UnicodeDecodeError):
        return ServedResponse(Response(400, reason="Bad Request"))
    return ServedResponse(
        Response(
            204,
            Headers([("X-Telemetry-Accepted", str(accepted))]),
        )
    )


def serve_forever(listener, app: StorageApp):
    """Accept loop: one spawned handler per connection."""
    while True:
        try:
            channel = yield Accept(listener)
        except (NetworkError, ConnectionClosed):
            return  # listener closed: shut down
        yield Spawn(handle_connection(channel, app), name="http-conn")


def handle_connection(channel, app: StorageApp):
    """Serve HTTP/1.x requests on one connection until close."""
    parser = HttpParser("server")
    config = app.config
    served = 0
    aborted = False
    if config.tls is not None:
        from repro.concurrency.tlsmodel import server_handshake
        from repro.errors import HttpProtocolError

        try:
            yield from server_handshake(channel, config.tls)
        except (
            ConnectionClosed,
            HttpProtocolError,
            TransferTimeout,
        ):
            yield Close(channel)
            return
    try:
        while True:
            request = yield from _read_request(
                channel, parser, config.keepalive_idle
            )
            if request is None:
                break
            served += 1
            keep = (
                config.keepalive
                and request.wants_keep_alive()
                and (
                    config.max_requests_per_connection is None
                    or served < config.max_requests_per_connection
                )
            )
            started = yield Now()
            # Metrics scrapes and telemetry pushes are pure observers:
            # they get no span, no wide event and no access-log entry,
            # so the series and traces they carry are never perturbed
            # by the act of reading or shipping them.
            scrape = (
                request.method == "GET"
                and config.metrics_path is not None
                and request.path == config.metrics_path
            )
            telemetry = (
                request.method == "POST"
                and config.collector is not None
                and request.path == config.telemetry_path
            )
            observer = scrape or telemetry
            trace_ctx = parse_traceparent(
                request.headers.get(TRACEPARENT_HEADER)
            )
            tracer = getattr(app, "tracer", None)
            span = None
            if tracer is not None and not observer:
                # Joined to the client's trace when a Traceparent
                # header arrived; a fresh root trace otherwise.
                span = tracer.start(
                    "server-request",
                    root=trace_ctx is None,
                    remote=trace_ctx,
                    method=request.method,
                    path=request.path,
                )
            if telemetry:
                result = _ingest_telemetry(config.collector, request)
            else:
                result = app.handle(request)
            if result.deferred is not None:
                # Deferred operations (e.g. third-party copy, proxy
                # gap fetches) do their own remote I/O before the
                # response exists. Apps that trace that I/O (the
                # proxy) read ``serving_span`` at the top of their
                # deferred — before its first effect yield — so the
                # hand-off is race-free on the cooperative runtime.
                if hasattr(app, "serving_span"):
                    app.serving_span = span
                result.response = yield from result.deferred()
                if hasattr(app, "serving_span"):
                    app.serving_span = None
            if config.tls is not None:
                # Record-layer crypto on the server's side.
                result.service_time += config.tls.record_cost(
                    result.body_length + len(request.body)
                )
            if result.service_time > 0:
                yield Sleep(result.service_time)
            if not keep:
                result.response.headers.set("Connection", "close")
            aborted = yield from _send_result(channel, result)
            finished = yield Now()
            status = result.response.status
            trace_hex = trace_ctx.trace_id_hex if trace_ctx else ""
            parent_hex = trace_ctx.span_id_hex if trace_ctx else ""
            if span is not None:
                span.end(status=status)
            events = getattr(app, "events", None)
            if events is not None and not observer:
                events.emit(
                    "request",
                    side="server",
                    ts=started,
                    method=request.method,
                    path=request.path,
                    status=status,
                    bytes_sent=result.body_length,
                    duration=finished - started,
                    trace_id=trace_hex,
                    parent_span_id=parent_hex,
                )
            access_log = getattr(app, "access_log", None)
            if access_log is not None and not observer:
                from repro.server.accesslog import AccessEntry

                access_log.record(
                    AccessEntry(
                        timestamp=started,
                        client=str(
                            getattr(channel, "remote", ("?",))[0]
                        ),
                        method=request.method,
                        path=request.path,
                        status=status,
                        bytes_sent=result.body_length,
                        duration=finished - started,
                        trace_id=trace_hex,
                        parent_span_id=parent_hex,
                    )
                )
            if aborted or not keep:
                break
    except (ConnectionClosed, HttpParseError, TransferTimeout):
        pass  # peer went away or spoke garbage: drop the connection
    if not aborted:
        yield Close(channel)


def _read_request(channel, parser: HttpParser, idle_timeout=KEEPALIVE_IDLE):
    """Read one full request (head + body); None on clean close."""
    head: Optional[Request] = None
    body = bytearray()
    while True:
        event = parser.next_event()
        if event == NEED_DATA:
            data = yield Recv(channel, timeout=idle_timeout)
            parser.receive_data(data)
            continue
        if event == CONNECTION_CLOSED:
            return None
        if isinstance(event, Request):
            head = event
        elif isinstance(event, Data):
            body.extend(event.data)
        elif isinstance(event, EndOfMessage):
            assert head is not None
            head.body = bytes(body)
            return head


def _send_result(channel, result: ServedResponse):
    """Send a ServedResponse; returns True if the connection was reset."""
    response = result.response
    if result.stream is None:
        wire = serialize_response(response)
        if result.reset_midway:
            yield Send(channel, wire[: max(1, len(wire) // 2)])
            yield Abort(channel)
            return True
        yield Send(channel, wire)
        return False

    head = serialize_response_head(
        response, content_length=result.stream_length
    )
    yield Send(channel, head)
    # A reset fault cuts the body at the halfway mark, whatever the
    # chunking.
    limit = (
        result.stream_length // 2 if result.reset_midway else None
    )
    sent = 0
    for piece in result.stream:
        if limit is not None and sent + len(piece) > limit:
            take = limit - sent
            if take > 0:
                yield Send(channel, piece[:take])
            yield Abort(channel)
            return True
        yield Send(channel, piece)
        sent += len(piece)
    if limit is not None:
        yield Abort(channel)
        return True
    return False


class HttpServer:
    """Bind a :class:`StorageApp` to a runtime and port."""

    def __init__(
        self,
        runtime: Runtime,
        app: StorageApp,
        port: int = 80,
        host: Optional[str] = None,
    ):
        self.runtime = runtime
        self.app = app
        self.port = port
        self.host = host
        self.listener = None
        self._task = None

    def start(self) -> "HttpServer":
        """Open the listener and spawn the accept loop."""
        self.listener = self.runtime.listen(self.port, self.host)
        actual = getattr(self.listener, "port", self.port)
        self.port = actual
        self._task = self.runtime.spawn(
            serve_forever(self.listener, self.app), name="http-server"
        )
        return self

    def stop(self) -> None:
        if self.listener is not None:
            self.listener.close()

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
