"""Flat-object storage dialect: S3-like GET-by-key, no WebDAV.

The paper argues HTTP's strength is that *any* HTTP storage speaks the
same client protocol — WebDAV-rich DPM nodes and bare cloud object
stores alike. This app is the minimal far end of that claim: a flat
key space where the only verbs are ``GET``/``HEAD``/``PUT``/``DELETE``
(plus ranged and multi-range GETs via the shared RFC 7233 machinery).
``PROPFIND``, ``MKCOL``, ``COPY``, ``MOVE`` and the rest of the WebDAV
vocabulary answer 405 — which is exactly what the davix read stack
must tolerate: :class:`~repro.core.file.DavFile` stats via HEAD and
reads via ranged GET, so vectored I/O, the transfer engine and the
page cache run unchanged against this dialect
(:class:`~repro.core.objectclient.ObjectStoreClient` is the client-side
pairing).

Listing is one JSON endpoint (``GET /?list=1&prefix=...``) so tooling
can enumerate keys without PROPFIND.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.http import Headers, Request, Response
from repro.server.faults import FaultPolicy
from repro.server.handlers import ServedResponse, ServerConfig
from repro.server.objectstore import ObjectStore, StoreError
from repro.server.rangeserver import plan_range_response

__all__ = ["FlatObjectApp"]

#: The whole verb set of the dialect — nothing WebDAV in it.
FLAT_VERBS = ("GET", "HEAD", "PUT", "DELETE", "OPTIONS")


class FlatObjectApp:
    """Flat-object request handler over an :class:`ObjectStore`.

    Keys are opaque paths (slashes carry no collection semantics on
    the wire). Plugs into the same
    :class:`~repro.server.app.HttpServer` as the WebDAV app and wears
    the same :class:`~repro.server.faults.FaultPolicy` for chaos runs.
    """

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[ServerConfig] = None,
        faults: Optional[FaultPolicy] = None,
        metrics=None,
    ):
        self.store = store
        self.config = config or ServerConfig(
            server_name="repro-flatstore/1.0"
        )
        self.faults = faults
        self.requests_handled = 0
        #: Optional :class:`~repro.obs.MetricsRegistry`; same
        #: per-method/per-status series the WebDAV app records, so
        #: object-backend runs are not observability blind spots.
        self.metrics = metrics
        #: Optional :class:`~repro.server.accesslog.AccessLog` — the
        #: serve loop records one entry per served request.
        self.access_log = None
        #: Optional :class:`~repro.obs.Tracer`: the serve loop starts a
        #: ``server-request`` span per request, joined to the client's
        #: trace when a ``Traceparent`` header arrives.
        self.tracer = None
        #: Optional :class:`~repro.obs.EventLog` for server-side wide
        #: events (one per served request).
        self.events = None

    # -- entry point --------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        """Compute the response for ``request`` (no I/O, no blocking)."""
        if (
            self.config.metrics_path is not None
            and request.method == "GET"
            and request.path == self.config.metrics_path
        ):
            return self._metrics_response()
        self.requests_handled += 1
        if self.metrics is not None:
            self.metrics.counter(
                "server.requests_total", method=request.method
            ).inc()
        fault = (
            self.faults.next_action(request.path) if self.faults else None
        )
        if fault is not None and fault.kind == "error":
            return self._finish(
                request,
                ServedResponse(
                    self._error(fault.status, "injected fault")
                ),
            )

        if request.method not in FLAT_VERBS:
            response = self._error(
                405, f"{request.method} is not spoken here"
            )
            response.headers.set("Allow", ", ".join(FLAT_VERBS))
            served = ServedResponse(response)
        elif request.method == "OPTIONS":
            served = ServedResponse(
                Response(204, Headers([("Allow", ", ".join(FLAT_VERBS))]))
            )
        elif request.method == "GET" and self._is_listing(request):
            served = ServedResponse(self._list_keys(request))
        else:
            handler = {
                "GET": self._get_object,
                "HEAD": self._head_object,
                "PUT": self._put_object,
                "DELETE": self._delete_object,
            }[request.method]
            served = handler(request)

        if fault is not None:
            if fault.kind == "slow":
                served.service_time += fault.delay
            elif fault.kind == "reset":
                served.reset_midway = True
        return self._finish(request, served)

    # -- object operations --------------------------------------------------

    def _get_object(self, request: Request) -> ServedResponse:
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._error(404, "no such key"))
        range_header = request.headers.get("Range")
        if range_header is not None:
            if_range = request.headers.get("If-Range")
            if if_range is not None and if_range.strip() != obj.etag:
                range_header = None
        plan = plan_range_response(
            obj,
            range_header,
            multirange_supported=self.config.multirange,
            max_ranges=self.config.max_ranges,
        )
        if plan.status == 416:
            return ServedResponse(Response(416, plan.headers))
        if plan.multipart_boundary is not None:
            body = plan.build_multipart_body(obj)
            self.store.bytes_read += plan.body_bytes
            return ServedResponse(Response(206, plan.headers, body))
        offset, length = plan.segments[0]
        body = obj.content.read(offset, length)
        self.store.bytes_read += length
        return ServedResponse(Response(plan.status, plan.headers, body))

    def _head_object(self, request: Request) -> ServedResponse:
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return ServedResponse(self._error(404, "no such key"))
        headers = Headers(
            [
                ("Content-Length", obj.size),
                ("Content-Type", obj.content_type),
                ("ETag", obj.etag),
                ("Accept-Ranges", "bytes"),
            ]
        )
        return ServedResponse(Response(200, headers))

    def _put_object(self, request: Request) -> ServedResponse:
        created = not self.store.exists(request.path)
        obj = self.store.put(
            request.path,
            request.body or b"",
            content_type=request.headers.get(
                "Content-Type", "binary/octet-stream"
            ),
        )
        return ServedResponse(
            Response(201 if created else 204, Headers([("ETag", obj.etag)]))
        )

    def _delete_object(self, request: Request) -> ServedResponse:
        try:
            self.store.delete(request.path)
        except StoreError:
            return ServedResponse(self._error(404, "no such key"))
        return ServedResponse(Response(204))

    # -- listing ------------------------------------------------------------

    @staticmethod
    def _is_listing(request: Request) -> bool:
        return "list=1" in (request.query or "").split("&")

    def _list_keys(self, request: Request) -> Response:
        prefix = ""
        for param in (request.query or "").split("&"):
            name, _, value = param.partition("=")
            if name == "prefix":
                prefix = value
        keys = []
        stack = ["/"]
        while stack:
            current = stack.pop()
            for member in self.store.list_collection(current):
                if self.store.is_collection(member):
                    stack.append(member)
                elif member.startswith(prefix):
                    keys.append(member)
        body = json.dumps({"keys": sorted(keys)}).encode("utf-8")
        return Response(
            200, Headers([("Content-Type", "application/json")]), body
        )

    # -- plumbing -----------------------------------------------------------

    def _metrics_response(self) -> ServedResponse:
        """The Prometheus text exposition of this app's registry."""
        from repro.obs.export import (
            PROMETHEUS_CONTENT_TYPE,
            prometheus_exposition,
        )

        text = (
            prometheus_exposition(self.metrics)
            if self.metrics is not None
            else ""
        )
        body = text.encode("utf-8")
        headers = Headers(
            [
                ("Content-Type", PROMETHEUS_CONTENT_TYPE),
                ("Content-Length", len(body)),
            ]
        )
        served = ServedResponse(Response(200, headers, body))
        served.response.headers.setdefault(
            "Server", self.config.server_name
        )
        return served

    def _finish(self, request, served: ServedResponse) -> ServedResponse:
        served.response.headers.setdefault(
            "Server", self.config.server_name
        )
        if (
            self.config.cache_control is not None
            and request.method in ("GET", "HEAD")
            and served.response.status in (200, 206, 304)
        ):
            served.response.headers.setdefault(
                "Cache-Control", self.config.cache_control
            )
        served.service_time += self.config.service_overhead
        served.service_time += (
            served.body_length / self.config.disk_bandwidth
        )
        return served

    @staticmethod
    def _error(status: int, message: str) -> Response:
        body = json.dumps({"error": message}).encode("utf-8")
        return Response(
            status,
            Headers([("Content-Type", "application/json")]),
            body,
        )
