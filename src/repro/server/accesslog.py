"""Structured per-request access log for the storage server.

Grid operations live on access logs (HammerCloud itself mines them).
The log is a bounded ring buffer of structured entries — each one a
flat record (:meth:`AccessEntry.to_record`) that serialises to JSONL
(:meth:`AccessLog.to_json_lines`); the Apache-common-log-format line is
just a rendering of that record. Entries carry the trace ID propagated
by the client's ``Traceparent`` header, so one grep joins server-side
log lines to client spans. Aggregations the benchmarks and operators
want (per-method counts, byte totals, latency percentiles) are built
in. With a :class:`~repro.obs.MetricsRegistry` attached, every entry
also feeds the server-side metric series
(``server.access_total{method=,status=}``, ``server.bytes_sent_total``,
``server.request_seconds``), and an attached
:class:`~repro.obs.RollingHistogram` ``window`` tracks the same
durations over a sliding window for the ``/metrics`` endpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs.events import events_to_json_lines

__all__ = ["AccessEntry", "AccessLog"]


@dataclass(frozen=True)
class AccessEntry:
    """One served request (a flat, JSONL-able record)."""

    timestamp: float
    client: str
    method: str
    path: str
    status: int
    bytes_sent: int
    duration: float
    #: Hex trace ID propagated by the client ("" when none arrived).
    trace_id: str = ""
    #: Hex span ID of the client span that sent the request ("" idem).
    parent_span_id: str = ""

    def to_record(self) -> Dict[str, object]:
        """The entry as a flat dict — the JSONL source of truth."""
        return {
            "kind": "access",
            "ts": self.timestamp,
            "client": self.client,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "bytes_sent": self.bytes_sent,
            "duration": self.duration,
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
        }

    def common_log_format(self) -> str:
        """Apache CLF-style rendering of :meth:`to_record` (timestamp
        as simulated seconds; trace ID appended when present)."""
        record = self.to_record()
        line = (
            f'{record["client"]} - - [{record["ts"]:.6f}] '
            f'"{record["method"]} {record["path"]} HTTP/1.1" '
            f'{record["status"]} {record["bytes_sent"]} '
            f'{record["duration"]:.6f}'
        )
        if record["trace_id"]:
            line += f' trace={record["trace_id"]}'
        return line


class AccessLog:
    """Bounded request log with aggregation helpers."""

    def __init__(self, capacity: int = 10_000, metrics=None, window=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Optional :class:`~repro.obs.MetricsRegistry` mirror.
        self.metrics = metrics
        #: Optional :class:`~repro.obs.RollingHistogram` of durations
        #: over a sliding window (exposed via the metrics endpoint).
        self.window = window
        self._entries: Deque[AccessEntry] = deque(maxlen=capacity)
        self.total_requests = 0
        self.total_bytes = 0

    def record(self, entry: AccessEntry) -> None:
        self._entries.append(entry)
        self.total_requests += 1
        self.total_bytes += entry.bytes_sent
        if self.metrics is not None:
            self.metrics.counter(
                "server.access_total",
                method=entry.method,
                status=str(entry.status),
            ).inc()
            self.metrics.counter("server.bytes_sent_total").inc(
                entry.bytes_sent
            )
            self.metrics.histogram("server.request_seconds").observe(
                entry.duration
            )
        if self.window is not None:
            self.window.observe(entry.duration)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[AccessEntry]:
        return list(self._entries)

    def tail(self, n: int = 10) -> List[AccessEntry]:
        return list(self._entries)[-n:]

    def by_status(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for entry in self._entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    def by_method(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self._entries:
            out[entry.method] = out.get(entry.method, 0) + 1
        return out

    def error_rate(self) -> float:
        """Fraction of logged requests with status >= 500."""
        if not self._entries:
            return 0.0
        errors = sum(1 for e in self._entries if e.status >= 500)
        return errors / len(self._entries)

    def latency_percentile(self, q: float) -> Optional[float]:
        """q-th percentile of request durations (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._entries:
            return None
        durations = sorted(e.duration for e in self._entries)
        index = min(len(durations) - 1, int(q * len(durations)))
        return durations[index]

    def render(self, n: Optional[int] = None) -> str:
        """The last n entries (all if None) in common log format."""
        entries = self.entries if n is None else self.tail(n)
        return "\n".join(e.common_log_format() for e in entries)

    def to_json_lines(self, n: Optional[int] = None) -> str:
        """The last n entries (all if None) as deterministic JSONL."""
        entries = self.entries if n is None else self.tail(n)
        return events_to_json_lines(e.to_record() for e in entries)
