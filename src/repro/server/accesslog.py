"""Structured per-request access log for the storage server.

Grid operations live on access logs (HammerCloud itself mines them).
The log is a bounded ring buffer of structured entries with an
Apache-common-log-format renderer, plus simple aggregations the
benchmarks and operators want (per-method counts, byte totals,
latency percentiles). With a :class:`~repro.obs.MetricsRegistry`
attached, every entry also feeds the server-side metric series
(``server.access_total{method=,status=}``, ``server.bytes_sent_total``,
``server.request_seconds``) so both ends of a run are visible in one
format.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

__all__ = ["AccessEntry", "AccessLog"]


@dataclass(frozen=True)
class AccessEntry:
    """One served request."""

    timestamp: float
    client: str
    method: str
    path: str
    status: int
    bytes_sent: int
    duration: float

    def common_log_format(self) -> str:
        """Apache CLF-style rendering (timestamp as simulated seconds)."""
        return (
            f'{self.client} - - [{self.timestamp:.6f}] '
            f'"{self.method} {self.path} HTTP/1.1" '
            f"{self.status} {self.bytes_sent} {self.duration:.6f}"
        )


class AccessLog:
    """Bounded request log with aggregation helpers."""

    def __init__(self, capacity: int = 10_000, metrics=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Optional :class:`~repro.obs.MetricsRegistry` mirror.
        self.metrics = metrics
        self._entries: Deque[AccessEntry] = deque(maxlen=capacity)
        self.total_requests = 0
        self.total_bytes = 0

    def record(self, entry: AccessEntry) -> None:
        self._entries.append(entry)
        self.total_requests += 1
        self.total_bytes += entry.bytes_sent
        if self.metrics is not None:
            self.metrics.counter(
                "server.access_total",
                method=entry.method,
                status=str(entry.status),
            ).inc()
            self.metrics.counter("server.bytes_sent_total").inc(
                entry.bytes_sent
            )
            self.metrics.histogram("server.request_seconds").observe(
                entry.duration
            )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[AccessEntry]:
        return list(self._entries)

    def tail(self, n: int = 10) -> List[AccessEntry]:
        return list(self._entries)[-n:]

    def by_status(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for entry in self._entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    def by_method(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self._entries:
            out[entry.method] = out.get(entry.method, 0) + 1
        return out

    def error_rate(self) -> float:
        """Fraction of logged requests with status >= 500."""
        if not self._entries:
            return 0.0
        errors = sum(1 for e in self._entries if e.status >= 500)
        return errors / len(self._entries)

    def latency_percentile(self, q: float) -> Optional[float]:
        """q-th percentile of request durations (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._entries:
            return None
        durations = sorted(e.duration for e in self._entries)
        index = min(len(durations) - 1, int(q * len(durations)))
        return durations[index]

    def render(self, n: Optional[int] = None) -> str:
        """The last n entries (all if None) in common log format."""
        entries = self.entries if n is None else self.tail(n)
        return "\n".join(e.common_log_format() for e in entries)
