"""WebDAV PROPFIND support: multistatus building and parsing.

The server answers ``PROPFIND`` with RFC 4918 ``207 Multi-Status`` XML;
the davix client parses it for ``stat()`` and directory listings —
exactly how the real davix implements POSIX-style metadata over HTTP.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import HttpParseError
from repro.http.dates import format_http_date, parse_http_date

__all__ = ["DavResource", "build_multistatus", "parse_multistatus"]

DAV_NS = "DAV:"


def _tag(name: str) -> str:
    return f"{{{DAV_NS}}}{name}"


@dataclass(frozen=True)
class DavResource:
    """Metadata of one resource as exchanged via PROPFIND."""

    href: str
    is_collection: bool
    size: int = 0
    mtime: Optional[float] = None
    etag: Optional[str] = None

    @property
    def name(self) -> str:
        """Last path segment of the href."""
        return self.href.rstrip("/").rsplit("/", 1)[-1]


def build_multistatus(resources: List[DavResource]) -> bytes:
    """Render resources as a 207 Multi-Status body."""
    ET.register_namespace("D", DAV_NS)
    root = ET.Element(_tag("multistatus"))
    for res in resources:
        response = ET.SubElement(root, _tag("response"))
        href = ET.SubElement(response, _tag("href"))
        href.text = res.href
        propstat = ET.SubElement(response, _tag("propstat"))
        prop = ET.SubElement(propstat, _tag("prop"))

        rtype = ET.SubElement(prop, _tag("resourcetype"))
        if res.is_collection:
            ET.SubElement(rtype, _tag("collection"))
        length = ET.SubElement(prop, _tag("getcontentlength"))
        length.text = str(res.size)
        if res.mtime is not None:
            modified = ET.SubElement(prop, _tag("getlastmodified"))
            modified.text = format_http_date(res.mtime)
        if res.etag:
            etag = ET.SubElement(prop, _tag("getetag"))
            etag.text = res.etag

        status = ET.SubElement(propstat, _tag("status"))
        status.text = "HTTP/1.1 200 OK"
    return ET.tostring(root, encoding="utf-8", xml_declaration=True)


def parse_multistatus(body: bytes) -> List[DavResource]:
    """Parse a 207 Multi-Status body into resources."""
    try:
        root = ET.fromstring(body)
    except ET.ParseError as exc:
        raise HttpParseError(f"invalid multistatus XML: {exc}") from exc
    if root.tag != _tag("multistatus"):
        raise HttpParseError(f"unexpected root element {root.tag!r}")

    resources = []
    for response in root.findall(_tag("response")):
        href_el = response.find(_tag("href"))
        if href_el is None or not href_el.text:
            raise HttpParseError("response without href")
        size = 0
        mtime = None
        etag = None
        is_collection = False
        for propstat in response.findall(_tag("propstat")):
            prop = propstat.find(_tag("prop"))
            if prop is None:
                continue
            rtype = prop.find(_tag("resourcetype"))
            if rtype is not None and rtype.find(_tag("collection")) is not None:
                is_collection = True
            length_el = prop.find(_tag("getcontentlength"))
            if length_el is not None and length_el.text:
                try:
                    size = int(length_el.text.strip())
                except ValueError:
                    size = 0
            modified_el = prop.find(_tag("getlastmodified"))
            if modified_el is not None and modified_el.text:
                mtime = parse_http_date(modified_el.text.strip())
            etag_el = prop.find(_tag("getetag"))
            if etag_el is not None and etag_el.text:
                etag = etag_el.text.strip()
        resources.append(
            DavResource(
                href=href_el.text.strip(),
                is_collection=is_collection,
                size=size,
                mtime=mtime,
                etag=etag,
            )
        )
    return resources
