"""Run the storage server on real sockets (integration tests, CLI)."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.concurrency import ThreadRuntime
from repro.server.app import HttpServer
from repro.server.handlers import ServerConfig, StorageApp
from repro.server.objectstore import ObjectStore

__all__ = ["real_server"]


@contextmanager
def real_server(
    app: Optional[StorageApp] = None,
    port: int = 0,
    config: Optional[ServerConfig] = None,
) -> Iterator[HttpServer]:
    """Context manager: a live localhost storage server.

    Yields the started :class:`HttpServer`; ``server.port`` holds the
    ephemeral port. The server thread is a daemon and dies with the
    listener.
    """
    if app is None:
        app = StorageApp(ObjectStore(), config=config)
    runtime = ThreadRuntime()
    server = HttpServer(runtime, app, port=port, host="127.0.0.1")
    server.start()
    try:
        yield server
    finally:
        server.stop()
