"""Deterministic fault injection for the storage server.

Replaces "a grid site is down / overloaded" in the paper's world: the
failover and resiliency experiments (Section 2.4) drive the client
against servers wearing one of these policies.

A policy instance is stateful (one RNG stream, injection counters) so a
chaos run is reproducible from its seed. :meth:`FaultPolicy.reset`
rewinds that state so the same instance can serve several runs without
the second run seeing the first run's RNG position or counters; all
mutation happens under one lock so threaded servers share a policy
safely.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["FaultAction", "FaultPolicy"]


@dataclass(frozen=True)
class FaultAction:
    """What the server should do to the current request.

    ``kind`` is one of:

    * ``"error"`` — answer with ``status`` instead of serving;
    * ``"reset"`` — send a partial response, then reset the connection;
    * ``"slow"`` — serve correctly after ``delay`` extra seconds.
    """

    kind: str
    status: int = 503
    delay: float = 0.0


@dataclass
class FaultPolicy:
    """Probabilistic per-request fault source (seeded, reproducible).

    Probabilities are evaluated in order error -> reset -> slow; at most
    one action fires per request. ``broken_paths`` always fail with
    ``error_status`` regardless of probabilities.
    """

    error_rate: float = 0.0
    error_status: int = 503
    reset_rate: float = 0.0
    slow_rate: float = 0.0
    slow_delay: float = 1.0
    broken_paths: Set[str] = field(default_factory=set)
    seed: int = 0

    def __post_init__(self):
        for name in ("error_rate", "reset_rate", "slow_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._lock = threading.Lock()
        self._rng = random.Random(self.seed)
        self.injected = {"error": 0, "reset": 0, "slow": 0}

    def reset(self) -> None:
        """Rewind to the post-construction state: fresh RNG stream from
        ``seed``, zeroed injection counters. Lets one policy instance
        drive several runs with identical fault schedules."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.injected = {"error": 0, "reset": 0, "slow": 0}

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of the injection counters."""
        with self._lock:
            return dict(self.injected)

    def break_path(self, path: str) -> None:
        """Make every request for ``path`` fail with ``error_status``."""
        self.broken_paths.add(path)

    def heal_path(self, path: str) -> None:
        self.broken_paths.discard(path)

    def next_action(self, path: str) -> Optional[FaultAction]:
        """Decide the fault (if any) for a request on ``path``."""
        with self._lock:
            if path in self.broken_paths:
                self.injected["error"] += 1
                return FaultAction("error", status=self.error_status)
            roll = self._rng.random()
            if roll < self.error_rate:
                self.injected["error"] += 1
                return FaultAction("error", status=self.error_status)
            roll -= self.error_rate
            if roll < self.reset_rate:
                self.injected["reset"] += 1
                return FaultAction("reset")
            roll -= self.reset_rate
            if roll < self.slow_rate:
                self.injected["slow"] += 1
                return FaultAction("slow", delay=self.slow_delay)
            return None
