"""S3-compatible REST interface over the object store.

The paper's introduction motivates HTTP data access with exactly this:
"HTTP is the foundation for interactions with commercial cloud storage
providers like Amazon Simple Storage Service ... using REST API like
S3" — and the real davix ships S3 support. This module adds an
AWS-signature-v2-style bucket/key interface on top of the same
:class:`~repro.server.objectstore.ObjectStore`:

* ``GET /bucket/key`` / ``PUT`` / ``DELETE`` / ``HEAD`` with signature
  verification (``Authorization: AWS <access>:<signature>``);
* ``GET /bucket?list-type=2`` -> ListObjectsV2-style XML;
* Range requests work exactly as on the WebDAV side (same range
  machinery), so davix's vectored reads run against S3 too.

The signature scheme is a faithful *shape* of AWS V2 (HMAC-SHA1 over a
canonical string); it is not wire-compatible with AWS (we do not claim
to be), but exercises the identical client code path: computing and
attaching an Authorization header per request.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Optional

from repro.http import Headers, Request, Response
from repro.server.handlers import ServedResponse, ServerConfig
from repro.server.objectstore import ObjectStore, StoreError
from repro.server.rangeserver import plan_range_response

__all__ = ["S3Credentials", "sign_request", "S3App"]


@dataclass(frozen=True)
class S3Credentials:
    """An access-key pair."""

    access_key: str
    secret_key: str


def canonical_string(method: str, path: str, amz_date: str) -> str:
    """The string both sides sign (method, path, date)."""
    return f"{method}\n{amz_date}\n{path}"


def compute_signature(
    credentials: S3Credentials, method: str, path: str, amz_date: str
) -> str:
    digest = hmac.new(
        credentials.secret_key.encode("utf-8"),
        canonical_string(method, path, amz_date).encode("utf-8"),
        hashlib.sha1,
    ).digest()
    return base64.b64encode(digest).decode("ascii")


def sign_request(
    request: Request, credentials: S3Credentials, date: str
) -> None:
    """Attach x-amz-date and Authorization headers to ``request``."""
    request.headers.set("x-amz-date", date)
    signature = compute_signature(
        credentials, request.method, request.path, date
    )
    request.headers.set(
        "Authorization", f"AWS {credentials.access_key}:{signature}"
    )


class S3App:
    """S3-flavoured request handler over an ObjectStore.

    Buckets are top-level collections; keys live underneath. Plugs into
    the same :class:`~repro.server.app.HttpServer` as the WebDAV app.
    """

    def __init__(
        self,
        store: ObjectStore,
        credentials: Optional[S3Credentials] = None,
        config: Optional[ServerConfig] = None,
    ):
        self.store = store
        #: None disables authentication (public bucket).
        self.credentials = credentials
        self.config = config or ServerConfig(server_name="repro-s3/1.0")
        self.requests_handled = 0
        self.auth_failures = 0

    # -- entry point ----------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        self.requests_handled += 1
        if not self._authorized(request):
            self.auth_failures += 1
            return ServedResponse(
                self._xml_error(403, "SignatureDoesNotMatch")
            )
        bucket, _, key = request.path.lstrip("/").partition("/")
        if not bucket:
            return ServedResponse(self._xml_error(400, "InvalidRequest"))
        if request.method == "GET" and not key:
            return ServedResponse(self._list_objects(bucket, request))
        handler = {
            "GET": self._get_object,
            "HEAD": self._head_object,
            "PUT": self._put_object,
            "DELETE": self._delete_object,
        }.get(request.method)
        if handler is None:
            return ServedResponse(
                self._xml_error(405, "MethodNotAllowed")
            )
        return handler(bucket, key, request)

    # -- auth -------------------------------------------------------------------

    def _authorized(self, request: Request) -> bool:
        if self.credentials is None:
            return True
        header = request.headers.get("Authorization", "")
        if not header.startswith("AWS "):
            return False
        try:
            access_key, signature = header[4:].split(":", 1)
        except ValueError:
            return False
        if access_key != self.credentials.access_key:
            return False
        date = request.headers.get("x-amz-date", "")
        expected = compute_signature(
            self.credentials, request.method, request.path, date
        )
        return hmac.compare_digest(signature, expected)

    # -- object operations ----------------------------------------------------------

    def _object_path(self, bucket: str, key: str) -> str:
        return f"/{bucket}/{key}"

    def _get_object(self, bucket, key, request) -> ServedResponse:
        try:
            obj = self.store.get(self._object_path(bucket, key))
        except StoreError:
            return ServedResponse(self._xml_error(404, "NoSuchKey"))
        plan = plan_range_response(
            obj,
            request.headers.get("Range"),
            multirange_supported=self.config.multirange,
            max_ranges=self.config.max_ranges,
        )
        if plan.status == 416:
            return ServedResponse(Response(416, plan.headers))
        if plan.multipart_boundary is not None:
            body = plan.build_multipart_body(obj)
            return ServedResponse(Response(206, plan.headers, body))
        offset, length = plan.segments[0]
        body = obj.content.read(offset, length)
        self.store.bytes_read += length
        return ServedResponse(Response(plan.status, plan.headers, body))

    def _head_object(self, bucket, key, request) -> ServedResponse:
        try:
            obj = self.store.get(self._object_path(bucket, key))
        except StoreError:
            return ServedResponse(Response(404))
        headers = Headers(
            [
                ("Content-Length", obj.size),
                ("Content-Type", obj.content_type),
                ("ETag", obj.etag),
                ("Accept-Ranges", "bytes"),
            ]
        )
        return ServedResponse(Response(200, headers))

    def _put_object(self, bucket, key, request) -> ServedResponse:
        if not key:
            # Bucket creation.
            if self.store.exists(f"/{bucket}"):
                return ServedResponse(Response(200))
            self.store.mkcol(f"/{bucket}")
            return ServedResponse(Response(200))
        obj = self.store.put(
            self._object_path(bucket, key),
            request.body,
            content_type=request.headers.get(
                "Content-Type", "binary/octet-stream"
            ),
        )
        return ServedResponse(
            Response(200, Headers([("ETag", obj.etag)]))
        )

    def _delete_object(self, bucket, key, request) -> ServedResponse:
        try:
            self.store.delete(self._object_path(bucket, key))
        except StoreError:
            return ServedResponse(self._xml_error(404, "NoSuchKey"))
        return ServedResponse(Response(204))

    # -- listing ------------------------------------------------------------------

    def _list_objects(self, bucket: str, request: Request) -> Response:
        if not self.store.is_collection(f"/{bucket}"):
            return self._xml_error(404, "NoSuchBucket")
        prefix = ""
        for param in request.query.split("&"):
            name, _, value = param.partition("=")
            if name == "prefix":
                prefix = value
        root = ET.Element("ListBucketResult")
        ET.SubElement(root, "Name").text = bucket
        ET.SubElement(root, "Prefix").text = prefix
        contents = []
        stack = [f"/{bucket}"]
        while stack:
            current = stack.pop()
            for member in self.store.list_collection(current):
                if self.store.is_collection(member):
                    stack.append(member)
                else:
                    key = member[len(f"/{bucket}/") :]
                    if key.startswith(prefix):
                        contents.append((key, self.store.get(member)))
        for key, obj in sorted(contents):
            entry = ET.SubElement(root, "Contents")
            ET.SubElement(entry, "Key").text = key
            ET.SubElement(entry, "Size").text = str(obj.size)
            ET.SubElement(entry, "ETag").text = obj.etag
        ET.SubElement(root, "KeyCount").text = str(len(contents))
        body = ET.tostring(root, encoding="utf-8", xml_declaration=True)
        return Response(
            200, Headers([("Content-Type", "application/xml")]), body
        )

    @staticmethod
    def _xml_error(status: int, code: str) -> Response:
        root = ET.Element("Error")
        ET.SubElement(root, "Code").text = code
        body = ET.tostring(root, encoding="utf-8", xml_declaration=True)
        return Response(
            status, Headers([("Content-Type", "application/xml")]), body
        )
