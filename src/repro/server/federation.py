"""DynaFed-like storage federation endpoint.

The paper (Section 2.4) pairs davix with the Dynamic Federations system
(DynaFed), which aggregates many storage endpoints under one namespace
and hands clients either a redirect to a live replica or a Metalink
listing all of them. This module implements that front end: it owns no
data, only a replica catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.http import Headers, Request, Response
from repro.metalink import (
    METALINK_MEDIA_TYPE,
    Metalink,
    MetalinkFile,
    MetalinkUrl,
    write_metalink,
)
from repro.server.handlers import ServedResponse

__all__ = ["ReplicaEntry", "FederationApp"]


@dataclass
class ReplicaEntry:
    """Catalogue record for one federated resource."""

    urls: List[str]
    size: Optional[int] = None
    adler32: Optional[str] = None


class FederationApp:
    """A data-less federator: redirects and Metalink generation.

    Implements the subset of :class:`~repro.server.handlers.StorageApp`'s
    contract that the serve loop needs (a ``handle`` method and a
    ``config``), so it plugs into the same :class:`HttpServer`.
    """

    def __init__(self, config=None):
        from repro.server.handlers import ServerConfig

        self.config = config or ServerConfig(server_name="repro-dynafed/1.0")
        self.catalogue: Dict[str, ReplicaEntry] = {}
        self._round_robin: Dict[str, int] = {}
        self.requests_handled = 0

    def register(
        self,
        path: str,
        urls: List[str],
        size: Optional[int] = None,
        adler32: Optional[str] = None,
    ) -> None:
        """Publish ``path`` with its replica list."""
        if not urls:
            raise ValueError("a federated entry needs at least one URL")
        self.catalogue[path] = ReplicaEntry(
            urls=list(urls), size=size, adler32=adler32
        )

    def handle(self, request: Request) -> ServedResponse:
        self.requests_handled += 1
        if request.method not in ("GET", "HEAD"):
            return ServedResponse(
                Response(405, Headers([("Allow", "GET, HEAD")]))
            )
        entry = self.catalogue.get(request.path)
        if entry is None:
            return ServedResponse(Response(404))
        if self._wants_metalink(request):
            return ServedResponse(self._metalink(request.path, entry))
        index = self._round_robin.get(request.path, 0)
        self._round_robin[request.path] = (index + 1) % len(entry.urls)
        target = entry.urls[index % len(entry.urls)]
        headers = Headers([("Location", target)])
        return ServedResponse(Response(302, headers))

    @staticmethod
    def _wants_metalink(request: Request) -> bool:
        if "metalink" in request.query.lower():
            return True
        return METALINK_MEDIA_TYPE in request.headers.get("Accept", "")

    @staticmethod
    def _metalink(path: str, entry: ReplicaEntry) -> Response:
        meta = MetalinkFile(
            name=path.rsplit("/", 1)[-1] or "/",
            size=entry.size,
            urls=[
                MetalinkUrl(url=url, priority=i + 1)
                for i, url in enumerate(entry.urls)
            ],
        )
        if entry.adler32:
            meta.hashes["adler32"] = entry.adler32
        body = write_metalink(Metalink(files=[meta]))
        return Response(
            200, Headers([("Content-Type", METALINK_MEDIA_TYPE)]), body
        )
