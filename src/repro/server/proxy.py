"""Range-aware caching HTTP forward proxy.

A big part of the paper's case for HTTP is "compatibility with existing
network infrastructure and services" (Section 2.2) — squids and site
caches that specialised protocols cannot use. This module implements
that infrastructure piece: a forward proxy taking absolute-URI
requests, backed by the same byte-budget page store the client uses
(:class:`~repro.core.pagecache.PageCache`), with ETag revalidation and
hit/miss accounting. The davix client targets it via
``RequestParams(proxy=...)``.

Unlike the classic whole-object squid model, this proxy is
**range-aware** — the traffic pattern vectored ROOT I/O produces:

* every GET response (full *or* ranged, single-range or
  ``multipart/byteranges``) is decomposed into pages keyed by
  ``(url, etag)``;
* a ranged request over cached pages is served locally — including
  ranged reads of an object cached whole;
* a *partially* cached request computes the missing page-aligned
  spans, fetches only those gaps from the origin as one coalesced
  multi-range request (guarded by ``If-Range`` so a changed object
  degrades to a coherent full refetch, never a version mix), and
  assembles the ``206``/multipart response locally;
* stale entries revalidate with ``If-None-Match`` (a ``304`` costs no
  body) and serve stale only when the origin is unreachable.

Like third-party copy, upstream fetches run as deferred work: the
proxy is itself a davix client towards the origin servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.pagecache import DEFAULT_PAGE_SIZE, PageCache
from repro.errors import HttpParseError, HttpProtocolError
from repro.http import (
    Headers,
    RangePart,
    Request,
    Response,
    Url,
    encode_byteranges,
    make_boundary,
    parse_cache_control,
    parse_range_header,
    resolve_ranges,
)
from repro.http.multipart import content_type_boundary, decode_byteranges
from repro.http.ranges import (
    RangeSpec,
    format_content_range,
    format_range_header,
    parse_content_range,
)
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    format_trace_id,
    parse_traceparent,
)
from repro.server.handlers import ServedResponse, ServerConfig

__all__ = ["ProxyApp"]

#: Response headers the proxy forwards from the origin.
FORWARDED_HEADERS = (
    "Content-Type",
    "ETag",
    "Accept-Ranges",
    "Content-Range",
    "Last-Modified",
    "Cache-Control",
)

#: Gap spans packed into one origin round trip (stays under common
#: server ``max_ranges`` limits).
MAX_GAP_RANGES = 64


class _ObjectMeta:
    """Cached non-page state of one origin object (the page bytes,
    ETag and size live in the :class:`PageCache` entry)."""

    __slots__ = ("content_type", "last_modified", "fresh_until")

    def __init__(self):
        self.content_type = "application/octet-stream"
        self.last_modified: Optional[str] = None
        #: Served without revalidation until this (runtime) time.
        self.fresh_until = 0.0


def _merge_spans(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for offset, length in sorted(spans):
        if merged and offset <= merged[-1][0] + merged[-1][1]:
            end = max(merged[-1][0] + merged[-1][1], offset + length)
            merged[-1] = (merged[-1][0], end - merged[-1][0])
        else:
            merged.append((offset, length))
    return merged


class ProxyApp:
    """Range-aware caching forward proxy; plugs into HttpServer.

    GET responses land in a shared page store: whole-object entries
    answer later ranged requests, ranged responses accumulate into
    partial coverage, and requests touching both cached and uncached
    spans fetch only the gaps from the origin.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        cache_bytes: int = 256 * 1024 * 1024,
        default_ttl: float = 60.0,
        page_size: int = DEFAULT_PAGE_SIZE,
        metrics=None,
        context=None,
    ):
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        if default_ttl < 0:
            raise ValueError("default_ttl must be >= 0")
        self.config = config or ServerConfig(server_name="repro-proxy/1.0")
        self.cache_bytes = cache_bytes
        #: Seconds an entry is served without revalidation.
        self.default_ttl = default_ttl
        self.page_size = page_size
        #: The page store (cached bytes, ETag and size per url).
        self.pages = PageCache(
            max(0, cache_bytes), page_size, metrics=metrics
        )
        self._meta: Dict[str, _ObjectMeta] = {}
        #: URLs the origin marked ``Cache-Control: no-store`` — always
        #: relayed, never written to the page store again.
        self._no_store: Set[str] = set()
        #: The davix context the proxy's upstream fetches run on.
        #: Inject one (``context=``) to give the proxy a real clock, a
        #: node-namespaced tracer and a telemetry sink; created lazily
        #: (bare) otherwise.
        self._context = context
        #: Observability hooks the connection loop looks for, mirroring
        #: :class:`~repro.server.handlers.StorageApp`.
        self.tracer = context.tracer if context is not None else None
        self.events = context.events if context is not None else None
        self.access_log = None
        #: The in-flight ``server-request`` span of the connection the
        #: current deferred belongs to (set by the connection loop just
        #: before it runs the deferred) — upstream fetch spans parent
        #: to it so gap fetches sit *inside* the proxy hop in the
        #: assembled trace.
        self.serving_span = None
        self.stats = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "partial_hits": 0,
            "revalidated": 0,
            "bypassed": 0,
            "evictions": 0,
            "origin_bytes_saved": 0,
        }

    # -- entry point ----------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        self.stats["requests"] += 1
        try:
            target = Url.parse(request.target)
        except Exception:
            return ServedResponse(
                _error(400, "proxy requires an absolute request URI")
            )

        # The client's Traceparent: upstream fetches join this trace,
        # so client -> proxy -> origin assembles into one tree.
        trace_ctx = parse_traceparent(
            request.headers.get(TRACEPARENT_HEADER)
        )
        if (
            request.method != "GET"
            or self.cache_bytes <= 0
            or str(target) in self._no_store
        ):
            self.stats["bypassed"] += 1
            return ServedResponse(
                Response(500),
                deferred=lambda: self._relay(request, target, trace_ctx),
            )
        return ServedResponse(
            Response(500),
            deferred=lambda: self._cached_get(
                request, target, trace_ctx
            ),
        )

    # -- upstream operations ----------------------------------------------------

    def _client_context(self):
        if self._context is None:
            from repro.core.context import Context

            self._context = Context()
        return self._context

    def _exchange(self, target: Url, upstream: Request, parent=None):
        """Effect sub-op: one origin round trip (raises on network
        failure — callers decide between stale-serve and 502)."""
        from repro.core.request import execute_request

        response, _ = yield from execute_request(
            self._client_context(),
            target,
            upstream,
            parent_span=parent,
        )
        return response

    def _start_upstream(self, name, trace_ctx, serving, **attrs):
        """Start a span for upstream work on the proxy's tracer.

        Parented under the connection's live ``server-request`` span
        when there is one — so gap fetches sit *inside* the proxy hop
        in the assembled trace — else joined remotely to the client's
        trace, else a fresh root. Returns ``None`` when tracing is off.
        """
        tracer = self._client_context().tracer
        if tracer is None or not getattr(tracer, "enabled", True):
            return None
        if (
            serving is not None
            and getattr(serving, "span_id", 0)
            and serving.end_time is None
        ):
            return tracer.start(name, parent=serving, **attrs)
        if trace_ctx is not None:
            return tracer.start(name, remote=trace_ctx, **attrs)
        return tracer.start(name, root=True, **attrs)

    def _emit_proxy_event(
        self, ts, url, outcome, status, served, from_cache, trace_ctx
    ):
        """One ``kind="proxy"`` wide event per served request — the
        byte-provenance analyzer splits delivered bytes into
        cache-served vs origin-fetched from exactly these fields."""
        if self.events is None:
            return
        self.events.emit(
            "proxy",
            ts=ts,
            url=url,
            outcome=outcome,
            status=status,
            served_bytes=max(0, served),
            from_cache_bytes=max(0, min(served, from_cache)),
            trace_id=(
                format_trace_id(trace_ctx.trace_id)
                if trace_ctx is not None
                else ""
            ),
        )

    def _relay(self, request: Request, target: Url, trace_ctx=None):
        """Effect sub-op: pass-through (non-cacheable) request."""
        from repro.errors import DavixError, NetworkError

        serving = self.serving_span
        upstream = Request(
            method=request.method,
            target=target.target,
            headers=_strip_hop_headers(request.headers),
            body=request.body,
        )
        span = self._start_upstream(
            "relay", trace_ctx, serving, url=str(target)
        )
        try:
            response = yield from self._exchange(
                target, upstream, parent=span
            )
        except (DavixError, NetworkError) as exc:
            if span is not None:
                span.end(error=str(exc))
            return _error(502, f"upstream failed: {exc}")
        if span is not None:
            span.end(status=response.status)
        self._emit_proxy_event(
            getattr(span, "end_time", None) or 0.0,
            str(target),
            "BYPASS",
            response.status,
            len(response.body),
            0,
            trace_ctx,
        )
        return _forwarded(response, cache_state="BYPASS")

    # -- the cached GET path ----------------------------------------------------

    def _cached_get(self, request: Request, target: Url, trace_ctx=None):
        """Effect sub-op: serve a GET from pages, gaps, or the origin.

        The attempt loop tolerates ETag churn mid-fill — a gap fetch
        that reveals a new version invalidates the stale pages and the
        next pass recomputes coverage against the fresh entry.
        """
        from repro.concurrency import Now
        from repro.errors import DavixError, NetworkError

        # Read before the first yield: the connection loop clears
        # ``serving_span`` the moment the deferred returns.
        serving = self.serving_span
        now = yield Now()
        url = str(target)
        outcome: Optional[str] = None
        saved_bytes = 0

        for _attempt in range(4):
            etag = self.pages.etag(url)
            size = self.pages.known_size(url)
            meta = self._meta.get(url)
            if etag is None or size is None or meta is None:
                aligned = self._cold_ranged_spans(request)
                if aligned is None:
                    response = yield from self._fill_from_scratch(
                        request, target, url, now, trace_ctx, serving
                    )
                    return response
                # Cold ranged request: fetch the page-aligned expansion
                # so the pages land whole and the response assembles
                # from the store (and repeats are pure hits).
                if outcome is None:
                    outcome = "MISS"
                    saved_bytes = 0
                try:
                    response = yield from self._fill_gaps(
                        target, url, aligned, None, now, trace_ctx, serving
                    )
                except (DavixError, NetworkError) as exc:
                    return _error(502, f"upstream failed: {exc}")
                if response is not None:
                    if response.status == 206:
                        # Undecodable 206 for the *expanded* ranges:
                        # relay the client's own request verbatim.
                        response = yield from self._relay(
                            request, target, trace_ctx
                        )
                    return response
                continue

            specs = self._requested_ranges(request, etag)
            need = self._needed_spans(specs, size)
            missing: List[Tuple[int, int]] = []
            for offset, length in need:
                missing.extend(self.pages.missing_spans(url, offset, length))
            missing = _merge_spans(missing)
            fresh = now < meta.fresh_until

            if not missing and (fresh or outcome is not None):
                # Fully cached and either fresh or just (re)validated.
                if outcome is None:
                    outcome = "HIT"
                    saved_bytes = sum(length for _, length in need)
                served = self._assemble(request, url, specs, outcome)
                if served is not None:
                    self._account(outcome, saved_bytes)
                    self._emit_proxy_event(
                        now,
                        url,
                        outcome,
                        served.status,
                        sum(length for _, length in need),
                        saved_bytes,
                        trace_ctx,
                    )
                    return served
                continue  # pages raced away (eviction): re-plan

            if not missing:
                # Fully cached but stale: conditional revalidation.
                upstream = Request(
                    "GET",
                    target.target,
                    Headers([("If-None-Match", etag)]),
                )
                span = self._start_upstream(
                    "revalidate", trace_ctx, serving, url=url
                )
                try:
                    response = yield from self._exchange(
                        target, upstream, parent=span
                    )
                except (DavixError, NetworkError):
                    if span is not None:
                        span.end(error="unreachable")
                    served = self._assemble(request, url, specs, "STALE")
                    if served is not None:
                        stale_bytes = sum(length for _, length in need)
                        self._account("STALE", stale_bytes)
                        self._emit_proxy_event(
                            now,
                            url,
                            "STALE",
                            served.status,
                            stale_bytes,
                            stale_bytes,
                            trace_ctx,
                        )
                        return served
                    return _error(502, "upstream failed and cache incomplete")
                if span is not None:
                    span.end(status=response.status)
                if response.status == 304:
                    meta.fresh_until = now + self._ttl_for(response)
                    outcome = "REVALIDATED"
                    saved_bytes = sum(length for _, length in need)
                    continue
                if response.status in (200, 206):
                    self._ingest(url, response, now)
                    outcome = "MISS"
                    saved_bytes = 0
                    continue
                return _forwarded(response, cache_state="UNCACHEABLE")

            # Gaps: fetch only the missing spans, If-Range guarded.
            if outcome is None:
                covered = sum(n for _, n in need) - sum(
                    n for _, n in missing
                )
                outcome = "PARTIAL" if covered > 0 else "MISS"
                saved_bytes = max(0, covered)
            try:
                response = yield from self._fill_gaps(
                    target, url, missing, etag, now, trace_ctx, serving
                )
            except (DavixError, NetworkError):
                return _error(502, "upstream failed and cache incomplete")
            if response is not None:
                if response.status == 206:
                    # Undecodable 206 for the gap ranges: relay the
                    # client's own request verbatim instead.
                    response = yield from self._relay(
                        request, target, trace_ctx
                    )
                    return response
                # A non-206/200 answer (e.g. the object vanished):
                # forward it verbatim.
                return _forwarded(response, cache_state="UNCACHEABLE")

        # Coverage never converged (budget too small for the request):
        # fall back to a verbatim relay so the client still gets bytes.
        response = yield from self._relay(request, target, trace_ctx)
        return response

    def _fill_from_scratch(
        self, request: Request, target: Url, url, now,
        trace_ctx=None, serving=None,
    ):
        """Effect sub-op: nothing cached — forward the request as-is
        and ingest whatever comes back."""
        from repro.errors import DavixError, NetworkError

        upstream = Request(
            "GET", target.target, _strip_hop_headers(request.headers)
        )
        span = self._start_upstream(
            "origin-fetch", trace_ctx, serving, url=url
        )
        try:
            response = yield from self._exchange(
                target, upstream, parent=span
            )
        except (DavixError, NetworkError) as exc:
            if span is not None:
                span.end(error=str(exc))
            return _error(502, f"upstream failed: {exc}")
        if span is not None:
            span.end(status=response.status)
        if response.status in (200, 206):
            self._ingest(url, response, now)
            self.stats["misses"] += 1
            self._emit_proxy_event(
                now,
                url,
                "MISS",
                response.status,
                len(response.body),
                0,
                trace_ctx,
            )
            return _forwarded(response, cache_state="MISS")
        return _forwarded(response, cache_state="UNCACHEABLE")

    def _fill_gaps(
        self, target: Url, url, missing, etag, now,
        trace_ctx=None, serving=None,
    ):
        """Effect sub-op: fetch the missing spans as coalesced
        multi-range requests and ingest the parts.

        Returns ``None`` when the pages were ingested (the caller
        re-plans), or a Response to forward verbatim. ``If-Range``
        makes a concurrent update come back as a full ``200`` — a
        coherent replacement instead of a cross-version mix.
        """
        span = self._start_upstream(
            "gap-fetch",
            trace_ctx,
            serving,
            url=url,
            spans=len(missing),
            bytes=sum(n for _, n in missing),
        )
        try:
            for start in range(0, len(missing), MAX_GAP_RANGES):
                chunk = missing[start : start + MAX_GAP_RANGES]
                headers = Headers(
                    [
                        (
                            "Range",
                            format_range_header(
                                [
                                    RangeSpec.from_offset_length(o, n)
                                    for o, n in chunk
                                ]
                            ),
                        )
                    ]
                )
                if etag is not None:
                    headers.set("If-Range", etag)
                upstream = Request("GET", target.target, headers)
                response = yield from self._exchange(
                    target, upstream, parent=span
                )
                if response.status in (200, 206):
                    if not self._ingest(url, response, now):
                        return response  # undecodable: forward verbatim
                    if response.status == 200:
                        return None  # whole object replaced: re-plan
                    continue
                if response.status == 416:
                    # Our size is stale: drop the entry and re-plan from
                    # scratch on the next attempt.
                    self.pages.invalidate(url)
                    self._meta.pop(url, None)
                    return None
                return response
            return None
        finally:
            if span is not None:
                span.end()

    # -- ingestion & accounting -------------------------------------------------

    def _ttl_for(self, response: Response) -> float:
        """Freshness lifetime the origin granted via ``Cache-Control``.

        ``max-age`` overrides the proxy's ``default_ttl``; ``no-cache``
        means "store but revalidate every time" (TTL zero). Anything
        else — including an absent or malformed header — falls back to
        the configured default.
        """
        directives = parse_cache_control(
            response.headers.get("Cache-Control")
        )
        if "no-cache" in directives:
            return 0.0
        max_age = directives.get("max-age")
        if max_age is not None:
            try:
                return max(0.0, float(max_age))
            except ValueError:
                return self.default_ttl
        return self.default_ttl

    def _ingest(self, url: str, response: Response, now: float) -> bool:
        """Decompose one origin response into pages + meta."""
        directives = parse_cache_control(
            response.headers.get("Cache-Control")
        )
        if "no-store" in directives:
            # The origin forbids storing this response: purge whatever
            # we hold and pin the URL to the relay path.
            self.pages.invalidate(url)
            self._meta.pop(url, None)
            self._no_store.add(url)
            return False
        etag = response.headers.get("ETag")
        meta = self._meta.setdefault(url, _ObjectMeta())
        if response.status == 200:
            self.pages.insert(
                url, etag, 0, response.body, total=len(response.body)
            )
            content_type = response.headers.get("Content-Type")
            if content_type:
                meta.content_type = content_type
        elif response.status == 206:
            content_type = response.content_type
            if content_type.lower().startswith("multipart/byteranges"):
                try:
                    parts = decode_byteranges(
                        response.body,
                        content_type_boundary(content_type),
                        copy=False,
                    )
                except (HttpParseError, HttpProtocolError):
                    return False
                for part in parts:
                    self.pages.insert(
                        url, etag, part.offset, part.data, total=part.total
                    )
            else:
                content_range = response.headers.get("Content-Range")
                if content_range is None:
                    return False
                try:
                    offset, _length, total = parse_content_range(
                        content_range
                    )
                except (HttpParseError, HttpProtocolError):
                    return False
                self.pages.insert(
                    url, etag, offset, response.body, total=total
                )
                if content_type:
                    meta.content_type = content_type
        else:
            return False
        last_modified = response.headers.get("Last-Modified")
        if last_modified:
            meta.last_modified = last_modified
        meta.fresh_until = now + self._ttl_for(response)
        self.stats["evictions"] = self.pages.stats["evictions"]
        return True

    def _account(self, state: str, saved_bytes: int) -> None:
        """One stats bump per served request, by outcome."""
        key = {
            "HIT": "hits",
            "STALE": "hits",
            "REVALIDATED": "revalidated",
            "MISS": "misses",
            "PARTIAL": "partial_hits",
        }[state]
        self.stats[key] += 1
        self.stats["origin_bytes_saved"] += max(0, saved_bytes)

    # -- request interpretation ---------------------------------------------------

    def _cold_ranged_spans(
        self, request: Request
    ) -> Optional[List[Tuple[int, int]]]:
        """Page-aligned expansion of a cold ranged request.

        ``None`` means the request cannot be pre-aligned (no Range
        header, an invalid one, or suffix/open-ended specs that need
        the — still unknown — object size) and must pass through.
        """
        header = request.headers.get("Range")
        if header is None:
            return None
        try:
            specs = parse_range_header(header)
        except HttpProtocolError:
            return None
        page = self.page_size
        spans: List[Tuple[int, int]] = []
        for spec in specs:
            if spec.first is None or spec.last is None:
                return None
            start = (spec.first // page) * page
            end = (spec.last // page + 1) * page
            spans.append((start, end - start))
        return _merge_spans(spans)

    def _requested_ranges(self, request: Request, etag: Optional[str]):
        """The client's Range specs, with If-Range applied.

        ``None`` means serve the full representation (no/invalid Range
        header, or an ``If-Range`` validator that no longer matches).
        """
        header = request.headers.get("Range")
        if header is None:
            return None
        if_range = request.headers.get("If-Range")
        if if_range is not None and if_range.strip() != (etag or ""):
            return None
        try:
            return parse_range_header(header)
        except HttpProtocolError:
            return None  # RFC 7233 §3.1: may ignore an invalid Range

    @staticmethod
    def _needed_spans(specs, size: int) -> List[Tuple[int, int]]:
        """The object spans a request needs (``[]`` means 416)."""
        if specs is None:
            return [(0, size)] if size > 0 else []
        return resolve_ranges(specs, size)

    # -- response assembly --------------------------------------------------------

    def _assemble(
        self, request: Request, url: str, specs, state: str
    ) -> Optional[Response]:
        """Build the client-facing response from cached pages.

        Mirrors the origin's RFC 7233 behaviour (same resolution, same
        single-range/multipart split) so a cache answer is
        indistinguishable from an origin answer, boundary aside.
        Returns ``None`` if a needed page has been evicted since the
        coverage check — the caller re-plans.
        """
        etag = self.pages.etag(url)
        size = self.pages.known_size(url)
        meta = self._meta.get(url)
        if etag is None or size is None or meta is None:
            return None

        if_none_match = request.headers.get("If-None-Match")
        if if_none_match is not None:
            candidates = [t.strip() for t in if_none_match.split(",")]
            if "*" in candidates or etag in candidates:
                return _mark(
                    Response(304, Headers([("ETag", etag)])), state
                )

        base = Headers([("Accept-Ranges", "bytes"), ("ETag", etag)])
        if meta.last_modified:
            base.set("Last-Modified", meta.last_modified)

        if specs is None:
            body = self.pages.read(url, 0, size)
            if body is None or len(body) != size:
                return None
            headers = base.copy()
            headers.set("Content-Type", meta.content_type)
            return _mark(Response(200, headers, body), state)

        resolved = resolve_ranges(specs, size)
        if not resolved:
            headers = base.copy()
            headers.set("Content-Range", f"bytes */{size}")
            return _mark(Response(416, headers), state)

        if len(resolved) == 1:
            offset, length = resolved[0]
            body = self.pages.read(url, offset, length)
            if body is None or len(body) != length:
                return None
            headers = base.copy()
            headers.set("Content-Type", meta.content_type)
            headers.set(
                "Content-Range", format_content_range(offset, length, size)
            )
            return _mark(Response(206, headers, body), state)

        parts: List[RangePart] = []
        for offset, length in resolved:
            data = self.pages.read(url, offset, length)
            if data is None or len(data) != length:
                return None
            parts.append(RangePart(offset=offset, data=data, total=size))
        boundary = make_boundary()
        body = encode_byteranges(parts, boundary, meta.content_type)
        headers = base.copy()
        headers.set(
            "Content-Type", f"multipart/byteranges; boundary={boundary}"
        )
        return _mark(Response(206, headers, body), state)

    # -- introspection ------------------------------------------------------------

    @property
    def cached_objects(self) -> int:
        return self.pages.object_count

    @property
    def cached_bytes(self) -> int:
        return self.pages.used_bytes

    def hit_ratio(self) -> float:
        looked_up = (
            self.stats["hits"]
            + self.stats["misses"]
            + self.stats["partial_hits"]
            + self.stats["revalidated"]
        )
        if looked_up == 0:
            return 0.0
        return (
            self.stats["hits"]
            + self.stats["partial_hits"]
            + self.stats["revalidated"]
        ) / looked_up


# -- helpers ----------------------------------------------------------------------


def _strip_hop_headers(headers: Headers) -> Headers:
    out = Headers()
    for name, value in headers.items():
        if name.lower() in ("connection", "host", "proxy-connection"):
            continue
        out.add(name, value)
    return out


def _forwardable(headers: Headers) -> Headers:
    out = Headers()
    for name in FORWARDED_HEADERS:
        value = headers.get(name)
        if value is not None:
            out.set(name, value)
    return out


def _forwarded(response: Response, cache_state: str) -> Response:
    headers = _forwardable(response.headers)
    headers.set("X-Cache", cache_state)
    headers.set("Via", "1.1 repro-proxy")
    return Response(response.status, headers, response.body)


def _mark(response: Response, state: str) -> Response:
    response.headers.set("X-Cache", state)
    response.headers.set("Via", "1.1 repro-proxy")
    return response


def _error(status: int, message: str) -> Response:
    return Response(
        status,
        Headers([("Content-Type", "text/plain")]),
        (message + "\n").encode(),
    )
