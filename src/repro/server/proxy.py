"""Caching HTTP forward proxy.

A big part of the paper's case for HTTP is "compatibility with existing
network infrastructure and services" (Section 2.2) — squids and site
caches that specialised protocols cannot use. This module implements
that infrastructure piece: a forward proxy taking absolute-URI requests,
with an LRU byte-bounded cache, ETag revalidation, and hit/miss
accounting. The davix client targets it via
``RequestParams(proxy=...)``.

Like third-party copy, upstream fetches run as deferred work: the proxy
is itself a davix client towards the origin servers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.http import Headers, Request, Response, Url
from repro.server.handlers import ServedResponse, ServerConfig

__all__ = ["CacheEntry", "ProxyApp"]

#: Response headers the proxy forwards from the origin.
FORWARDED_HEADERS = (
    "Content-Type",
    "ETag",
    "Accept-Ranges",
    "Content-Range",
    "Last-Modified",
)


@dataclass
class CacheEntry:
    """One cached representation."""

    status: int
    headers: Headers
    body: bytes
    etag: Optional[str]
    #: Served without revalidation until this (runtime) time.
    fresh_until: float = 0.0

    @property
    def size(self) -> int:
        return len(self.body)


class ProxyApp:
    """Forward proxy with an LRU cache; plugs into HttpServer.

    Only plain (un-ranged) GET responses with 200 status are cached —
    ranged requests pass through, mirroring common squid configs.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        cache_bytes: int = 256 * 1024 * 1024,
        default_ttl: float = 60.0,
    ):
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        if default_ttl < 0:
            raise ValueError("default_ttl must be >= 0")
        self.config = config or ServerConfig(server_name="repro-proxy/1.0")
        self.cache_bytes = cache_bytes
        #: Seconds an entry is served without revalidation.
        self.default_ttl = default_ttl
        self._cache: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._cache_used = 0
        self._context = None  # lazy davix context for upstream fetches
        self.stats = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "revalidated": 0,
            "bypassed": 0,
            "evictions": 0,
        }

    # -- entry point ----------------------------------------------------------

    def handle(self, request: Request) -> ServedResponse:
        self.stats["requests"] += 1
        try:
            target = Url.parse(request.target)
        except Exception:
            return ServedResponse(
                _error(400, "proxy requires an absolute request URI")
            )

        cacheable = (
            request.method == "GET"
            and "Range" not in request.headers
            and self.cache_bytes > 0
        )
        if not cacheable:
            self.stats["bypassed"] += 1
            return ServedResponse(
                Response(500), deferred=lambda: self._relay(request, target)
            )

        cached = self._cache.get(str(target))
        return ServedResponse(
            Response(500),
            deferred=lambda: self._cached_get(request, target, cached),
        )

    # -- upstream operations ----------------------------------------------------

    def _client_context(self):
        if self._context is None:
            from repro.core.context import Context

            self._context = Context()
        return self._context

    def _relay(self, request: Request, target: Url):
        """Effect sub-op: pass-through (non-cacheable) request."""
        from repro.core.request import execute_request
        from repro.errors import DavixError, NetworkError

        upstream = Request(
            method=request.method,
            target=target.target,
            headers=_strip_hop_headers(request.headers),
            body=request.body,
        )
        try:
            response, _ = yield from execute_request(
                self._client_context(), target, upstream
            )
        except (DavixError, NetworkError) as exc:
            return _error(502, f"upstream failed: {exc}")
        return _forwarded(response, cache_state="BYPASS")

    def _cached_get(
        self,
        request: Request,
        target: Url,
        cached: Optional[CacheEntry],
    ):
        """Effect sub-op: cache lookup, revalidation, or miss fetch."""
        from repro.concurrency import Now
        from repro.core.request import execute_request
        from repro.errors import DavixError, NetworkError

        now = yield Now()
        if cached is not None and now < cached.fresh_until:
            self.stats["hits"] += 1
            self._cache.move_to_end(str(target))
            return _from_cache(cached, "HIT")

        headers = _strip_hop_headers(request.headers)
        if cached is not None and cached.etag:
            headers.set("If-None-Match", cached.etag)
        upstream = Request("GET", target.target, headers)
        try:
            response, _ = yield from execute_request(
                self._client_context(), target, upstream
            )
        except (DavixError, NetworkError) as exc:
            if cached is not None:
                # Origin down: serve stale (squid's offline mode).
                self.stats["hits"] += 1
                return _from_cache(cached, "STALE")
            return _error(502, f"upstream failed: {exc}")

        if response.status == 304 and cached is not None:
            self.stats["revalidated"] += 1
            cached.fresh_until = now + self.default_ttl
            self._cache.move_to_end(str(target))
            return _from_cache(cached, "REVALIDATED")

        if response.status == 200:
            self.stats["misses"] += 1
            self._store(str(target), response, now + self.default_ttl)
            return _forwarded(response, cache_state="MISS")
        return _forwarded(response, cache_state="UNCACHEABLE")

    # -- cache maintenance ---------------------------------------------------------

    def _store(
        self, key: str, response: Response, fresh_until: float
    ) -> None:
        if len(response.body) > self.cache_bytes:
            return  # larger than the whole cache
        old = self._cache.pop(key, None)
        if old is not None:
            self._cache_used -= old.size
        entry = CacheEntry(
            status=response.status,
            headers=_forwardable(response.headers),
            body=response.body,
            etag=response.headers.get("ETag"),
            fresh_until=fresh_until,
        )
        self._cache[key] = entry
        self._cache_used += entry.size
        while self._cache_used > self.cache_bytes:
            _evicted_key, evicted = self._cache.popitem(last=False)
            self._cache_used -= evicted.size
            self.stats["evictions"] += 1

    @property
    def cached_objects(self) -> int:
        return len(self._cache)

    @property
    def cached_bytes(self) -> int:
        return self._cache_used

    def hit_ratio(self) -> float:
        looked_up = (
            self.stats["hits"]
            + self.stats["misses"]
            + self.stats["revalidated"]
        )
        if looked_up == 0:
            return 0.0
        return (
            self.stats["hits"] + self.stats["revalidated"]
        ) / looked_up


# -- helpers ----------------------------------------------------------------------


def _strip_hop_headers(headers: Headers) -> Headers:
    out = Headers()
    for name, value in headers.items():
        if name.lower() in ("connection", "host", "proxy-connection"):
            continue
        out.add(name, value)
    return out


def _forwardable(headers: Headers) -> Headers:
    out = Headers()
    for name in FORWARDED_HEADERS:
        value = headers.get(name)
        if value is not None:
            out.set(name, value)
    return out


def _forwarded(response: Response, cache_state: str) -> Response:
    headers = _forwardable(response.headers)
    headers.set("X-Cache", cache_state)
    headers.set("Via", "1.1 repro-proxy")
    return Response(response.status, headers, response.body)


def _from_cache(entry: CacheEntry, state: str) -> Response:
    headers = entry.headers.copy()
    headers.set("X-Cache", state)
    headers.set("Via", "1.1 repro-proxy")
    return Response(entry.status, headers, entry.body)


def _error(status: int, message: str) -> Response:
    return Response(
        status,
        Headers([("Content-Type", "text/plain")]),
        (message + "\n").encode(),
    )
