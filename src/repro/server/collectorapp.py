"""A standalone telemetry-collector node.

The cluster's telemetry plane needs somewhere to aggregate when no
storage app is convenient — a dedicated node every client Context and
server app POSTs its batches to. :class:`CollectorApp` is that node:
the connection loop (:mod:`repro.server.app`) already ingests
``POST <telemetry_path>`` for any app whose config mounts a collector,
so this app only adds the read side — ``GET <telemetry_path>`` serves
the collected records back as canonical JSONL (the artefact
``davix-tool trace`` consumes), and ``GET <telemetry_path>/stats``
reports ingest counters.

Mounting inside an existing app instead needs no new process::

    collector = TelemetryCollector()
    app = StorageApp(store, ServerConfig(collector=collector))
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.http import Headers, Request, Response
from repro.obs.collector import (
    TELEMETRY_CONTENT_TYPE,
    TelemetryCollector,
)
from repro.server.handlers import ServedResponse, ServerConfig

__all__ = ["CollectorApp"]


class CollectorApp:
    """Serve one :class:`TelemetryCollector` over HTTP."""

    def __init__(
        self,
        collector: Optional[TelemetryCollector] = None,
        config: Optional[ServerConfig] = None,
    ):
        self.collector = (
            collector if collector is not None else TelemetryCollector()
        )
        config = config or ServerConfig()
        if config.collector is None:
            config = replace(config, collector=self.collector)
        self.config = config
        # Observability attributes the connection loop looks for; a
        # collector node is itself observable like any other app.
        self.metrics = None
        self.tracer = None
        self.events = None
        self.access_log = None

    def handle(self, request: Request) -> ServedResponse:
        path = self.config.telemetry_path
        if request.method == "GET" and request.path == path:
            body = self.collector.to_json_lines()
            payload = (body + "\n").encode("utf-8") if body else b""
            return ServedResponse(
                Response(
                    200,
                    Headers(
                        [("Content-Type", TELEMETRY_CONTENT_TYPE)]
                    ),
                    payload,
                )
            )
        if request.method == "GET" and request.path == f"{path}/stats":
            stats = (
                f"records={len(self.collector)}"
                f" batches={self.collector.batches}"
                f" dropped={self.collector.dropped}\n"
            )
            return ServedResponse(
                Response(
                    200,
                    Headers([("Content-Type", "text/plain")]),
                    stats.encode("utf-8"),
                )
            )
        # POSTs to the telemetry path never reach handle() — the
        # connection loop ingests them first.
        return ServedResponse(Response(404, reason="Not Found"))
