"""HTTP/WebDAV storage server (DPM-like) and DynaFed-like federator."""

from repro.server.app import HttpServer, handle_connection, serve_forever
from repro.server.collectorapp import CollectorApp
from repro.server.faults import FaultAction, FaultPolicy
from repro.server.accesslog import AccessEntry, AccessLog
from repro.server.federation import FederationApp, ReplicaEntry
from repro.server.flatobject import FlatObjectApp
from repro.server.handlers import ServedResponse, ServerConfig, StorageApp
from repro.server.objectstore import (
    BytesContent,
    Content,
    ObjectStore,
    StoreError,
    StoredObject,
    SyntheticContent,
    ZeroContent,
)
from repro.server.proxy import ProxyApp
from repro.server.realserver import real_server
from repro.server.s3 import S3App, S3Credentials, sign_request
from repro.server.webdav import DavResource, build_multistatus, parse_multistatus

__all__ = [
    "HttpServer",
    "handle_connection",
    "serve_forever",
    "CollectorApp",
    "FaultAction",
    "FaultPolicy",
    "FederationApp",
    "FlatObjectApp",
    "AccessEntry",
    "AccessLog",
    "ReplicaEntry",
    "ServedResponse",
    "ServerConfig",
    "StorageApp",
    "BytesContent",
    "Content",
    "ObjectStore",
    "StoreError",
    "StoredObject",
    "SyntheticContent",
    "ZeroContent",
    "real_server",
    "ProxyApp",
    "S3App",
    "S3Credentials",
    "sign_request",
    "DavResource",
    "build_multistatus",
    "parse_multistatus",
]
