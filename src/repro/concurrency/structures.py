"""Structured-concurrency helpers built from the effect vocabulary.

:func:`bounded_gather` is the shared fan-out primitive: run N effect
sub-operations with at most ``limit`` in flight, collect every outcome
in submission order, and only then surface failures. It backs the
pool dispatcher (:func:`repro.core.dispatch.run_parallel`) and the
parallel vectored-read path — one scheduling policy, every runtime
(deterministic on the simulator, OS threads on sockets).

:class:`TaskWindow` is its open-ended sibling: bookkeeping for a
*sliding* window of spawned tasks whose results are consumed out of
order and refilled as they drain — the shape of the transfer engine's
speculative read-ahead (:mod:`repro.core.engine`), where gather's
submit-all/collect-all contract does not fit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, List, Optional, Sequence

from repro.concurrency.effects import Join, Spawn

__all__ = ["Outcome", "TaskWindow", "bounded_gather"]


class TaskWindow:
    """Budget bookkeeping for a sliding window of spawned tasks.

    Tracks how many tasks (and how many bytes of expected payload) are
    spawned but not yet settled; :meth:`has_room` gates new spawns on
    both budgets. The window is *elastic*: :meth:`resize` moves the
    task-count bound between ``floor`` and ``ceiling``, which is how an
    adaptive prefetcher grows on sequential hits and shrinks on errors
    or random access. Spawning and joining stay with the caller — this
    class only answers "may another task launch right now?".
    """

    __slots__ = ("limit", "floor", "ceiling", "max_bytes", "tasks", "bytes")

    def __init__(
        self,
        limit: int,
        floor: int = 1,
        ceiling: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        if floor < 1:
            raise ValueError("floor must be >= 1")
        ceiling = limit if ceiling is None else ceiling
        if not floor <= limit <= ceiling:
            raise ValueError("window limit must satisfy floor <= limit <= ceiling")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.limit = limit
        self.floor = floor
        self.ceiling = ceiling
        self.max_bytes = max_bytes
        self.tasks = 0
        self.bytes = 0

    def has_room(self) -> bool:
        """May another task launch under the current budgets?

        The byte budget is soft-edged: a window that is empty always
        has room, so one oversized task can still make progress.
        """
        if self.tasks >= self.limit:
            return False
        if self.max_bytes is None or self.tasks == 0:
            return True
        return self.bytes < self.max_bytes

    def launched(self, nbytes: int = 0) -> None:
        """Record one spawned task carrying ``nbytes`` of payload."""
        self.tasks += 1
        self.bytes += nbytes

    def settled(self, nbytes: int = 0) -> None:
        """Record one task joined (its payload leaves the window)."""
        self.tasks -= 1
        self.bytes -= nbytes

    def grow(self, step: int = 1) -> bool:
        """Widen the window by ``step`` toward the ceiling."""
        widened = min(self.ceiling, self.limit + step)
        changed = widened != self.limit
        self.limit = widened
        return changed

    def shrink(self) -> bool:
        """Halve the window toward the floor (multiplicative decrease)."""
        narrowed = max(self.floor, self.limit // 2)
        changed = narrowed != self.limit
        self.limit = narrowed
        return changed

    def resize(self, limit: int) -> None:
        """Set the window bound directly (clamped to floor..ceiling)."""
        self.limit = max(self.floor, min(self.ceiling, limit))

    def __repr__(self) -> str:
        return (
            f"<TaskWindow {self.tasks}/{self.limit} tasks "
            f"{self.bytes} bytes>"
        )


class Outcome:
    """Result of one gathered operation: a value or an exception."""

    __slots__ = ("index", "value", "error")

    def __init__(self, index: int, value=None, error=None):
        self.index = index
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, re-raising the operation's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value

    def __repr__(self) -> str:
        state = f"error={self.error!r}" if self.error else f"value={self.value!r}"
        return f"<Outcome #{self.index} {state}>"


def bounded_gather(
    thunks: Sequence[Callable[[], Generator]],
    limit: int,
    name: str = "gather",
    on_start: Optional[Callable[[], None]] = None,
    on_finish: Optional[Callable[[], None]] = None,
):
    """Effect sub-op: run operation thunks with ``limit`` in flight.

    Each thunk is a zero-argument callable returning a fresh effect
    generator. ``min(limit, len(thunks))`` worker lanes are spawned;
    each lane drains the shared queue, so a slow operation only holds
    its own lane. Exceptions are captured per operation and returned in
    the :class:`Outcome` list (submission order) — callers decide
    whether to raise. ``on_start``/``on_finish`` are invoked around
    every operation (in-flight gauges hook in here).
    """
    if limit < 1:
        raise ValueError("limit must be >= 1")
    results: List[Optional[Outcome]] = [None] * len(thunks)
    queue = deque(enumerate(thunks))

    def lane():
        while True:
            try:
                index, thunk = queue.popleft()
            except IndexError:
                return
            if on_start is not None:
                on_start()
            try:
                value = yield from thunk()
            except Exception as exc:  # captured per operation
                results[index] = Outcome(index, error=exc)
            else:
                results[index] = Outcome(index, value=value)
            finally:
                if on_finish is not None:
                    on_finish()

    width = min(limit, len(thunks))
    tasks = []
    for lane_index in range(width):
        task = yield Spawn(lane(), name=f"{name}-{lane_index}")
        tasks.append(task)
    for task in tasks:
        yield Join(task)
    return results
