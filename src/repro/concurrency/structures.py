"""Structured-concurrency helpers built from the effect vocabulary.

:func:`bounded_gather` is the shared fan-out primitive: run N effect
sub-operations with at most ``limit`` in flight, collect every outcome
in submission order, and only then surface failures. It backs the
pool dispatcher (:func:`repro.core.dispatch.run_parallel`) and the
parallel vectored-read path — one scheduling policy, every runtime
(deterministic on the simulator, OS threads on sockets).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, List, Optional, Sequence

from repro.concurrency.effects import Join, Spawn

__all__ = ["Outcome", "bounded_gather"]


class Outcome:
    """Result of one gathered operation: a value or an exception."""

    __slots__ = ("index", "value", "error")

    def __init__(self, index: int, value=None, error=None):
        self.index = index
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, re-raising the operation's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value

    def __repr__(self) -> str:
        state = f"error={self.error!r}" if self.error else f"value={self.value!r}"
        return f"<Outcome #{self.index} {state}>"


def bounded_gather(
    thunks: Sequence[Callable[[], Generator]],
    limit: int,
    name: str = "gather",
    on_start: Optional[Callable[[], None]] = None,
    on_finish: Optional[Callable[[], None]] = None,
):
    """Effect sub-op: run operation thunks with ``limit`` in flight.

    Each thunk is a zero-argument callable returning a fresh effect
    generator. ``min(limit, len(thunks))`` worker lanes are spawned;
    each lane drains the shared queue, so a slow operation only holds
    its own lane. Exceptions are captured per operation and returned in
    the :class:`Outcome` list (submission order) — callers decide
    whether to raise. ``on_start``/``on_finish`` are invoked around
    every operation (in-flight gauges hook in here).
    """
    if limit < 1:
        raise ValueError("limit must be >= 1")
    results: List[Optional[Outcome]] = [None] * len(thunks)
    queue = deque(enumerate(thunks))

    def lane():
        while True:
            try:
                index, thunk = queue.popleft()
            except IndexError:
                return
            if on_start is not None:
                on_start()
            try:
                value = yield from thunk()
            except Exception as exc:  # captured per operation
                results[index] = Outcome(index, error=exc)
            else:
                results[index] = Outcome(index, value=value)
            finally:
                if on_finish is not None:
                    on_finish()

    width = min(limit, len(thunks))
    tasks = []
    for lane_index in range(width):
        task = yield Spawn(lane(), name=f"{name}-{lane_index}")
        tasks.append(task)
    for task in tasks:
        yield Join(task)
    return results
