"""Promises: one-shot result slots usable from both runtimes.

A promise is created with the ``MakePromise`` effect and awaited with
``Await``; any code (including plain synchronous callbacks, e.g. a
protocol demultiplexer) may ``resolve``/``reject`` it. This is what lets
the XRootD client run one reader task that fans responses out to many
outstanding requests — the protocol's stream multiplexing.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.sim import Environment, Gate

__all__ = ["SimPromise", "ThreadPromise", "EffectLock"]


class SimPromise:
    """Promise backed by a simulation Gate."""

    def __init__(self, env: Environment):
        self._gate = Gate(env)

    @property
    def done(self) -> bool:
        return self._gate.is_open

    def resolve(self, value: Any = None) -> None:
        if not self._gate.is_open:
            self._gate.open(value)

    def reject(self, exc: BaseException) -> None:
        if not self._gate.is_open:
            self._gate.fail(exc)

    def _wait_event(self):
        return self._gate.wait()


class ThreadPromise:
    """Promise backed by a threading.Event."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, value: Any = None) -> None:
        if not self._event.is_set():
            self._value = value
            self._event.set()

    def reject(self, exc: BaseException) -> None:
        if not self._event.is_set():
            self._error = exc
            self._event.set()

    def _wait(self, timeout: Optional[float]) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError
        if self._error is not None:
            raise self._error
        return self._value


class EffectLock:
    """FIFO mutex built from promises (portable across runtimes).

    Usage inside an operation::

        ticket = yield from lock.acquire()
        try:
            ...
        finally:
            lock.release(ticket)
    """

    def __init__(self):
        self._tail = None
        self._guard = threading.Lock()

    def acquire(self):
        """Effect sub-op: returns a ticket once the lock is held."""
        from repro.concurrency.effects import Await, MakePromise

        ticket = yield MakePromise()
        with self._guard:
            previous, self._tail = self._tail, ticket
        if previous is not None:
            yield Await(previous)
        return ticket

    def release(self, ticket) -> None:
        """Release the lock, waking the next waiter (if any)."""
        with self._guard:
            if self._tail is ticket:
                self._tail = None
        ticket.resolve()
