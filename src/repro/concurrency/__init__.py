"""Effect-based concurrency: write protocol code once, run it on the
simulated network or on real sockets."""

from repro.concurrency.effects import (
    Abort,
    Accept,
    Await,
    Close,
    Connect,
    Effect,
    Join,
    MakePromise,
    Now,
    Recv,
    Send,
    Sleep,
    Spawn,
)
from repro.concurrency.promise import EffectLock, SimPromise, ThreadPromise
from repro.concurrency.runtime import Runtime, TaskHandle
from repro.concurrency.structures import Outcome, TaskWindow, bounded_gather
from repro.concurrency.sim_runtime import SimRuntime
from repro.concurrency.thread_runtime import ThreadRuntime

__all__ = [
    "Abort",
    "Accept",
    "Await",
    "MakePromise",
    "EffectLock",
    "SimPromise",
    "ThreadPromise",
    "Close",
    "Connect",
    "Effect",
    "Join",
    "Now",
    "Recv",
    "Send",
    "Sleep",
    "Spawn",
    "Outcome",
    "TaskWindow",
    "bounded_gather",
    "Runtime",
    "TaskHandle",
    "SimRuntime",
    "ThreadRuntime",
]
