"""Effect interpreter over the discrete-event network model.

A :class:`SimRuntime` is bound to one simulated host: every ``Connect``
originates from that host, every ``listen`` opens a port on it. Spawned
operations become kernel processes; ``Sleep`` advances simulated time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.concurrency import effects as fx
from repro.concurrency.runtime import Runtime, TaskHandle
from repro.errors import TransferTimeout
from repro.net.network import Network
from repro.sim import Environment

__all__ = ["SimRuntime"]


class SimRuntime(Runtime):
    """Run effect generators on a simulated host.

    Parameters
    ----------
    network:
        The simulated network this host lives in.
    host:
        Name of the host the runtime is bound to.
    """

    def __init__(self, network: Network, host: str):
        self.network = network
        self.env: Environment = network.env
        self.host = host
        network.host(host)  # validate early

    # -- Runtime interface ----------------------------------------------------

    def run(self, op: Generator) -> Any:
        """Drive the *whole simulation* until ``op`` completes."""
        return self.env.run(until=self.env.process(self._interpret(op)))

    def spawn(self, op: Generator, name: str = "") -> TaskHandle:
        return TaskHandle(self.env.process(self._interpret(op)), name)

    def join(self, task: TaskHandle) -> Any:
        """Wait (by running the simulation) for a spawned task."""
        return self.env.run(until=task.impl)

    def listen(self, port: int, host: Optional[str] = None) -> Any:
        return self.network.listen(host or self.host, port)

    def now(self) -> float:
        return self.env.now

    # -- interpreter ---------------------------------------------------------

    def _interpret(self, gen: Generator):
        """Kernel process translating effects into simulator events."""
        result: Any = None
        failure: Optional[BaseException] = None
        while True:
            try:
                if failure is not None:
                    step = gen.throw(failure)
                else:
                    step = gen.send(result)
            except StopIteration as stop:
                return stop.value
            result, failure = None, None
            try:
                result = yield from self._perform(step)
            except Exception as exc:  # deliver into the operation
                failure = exc

    def _perform(self, step: fx.Effect):
        env = self.env
        if isinstance(step, fx.Sleep):
            if step.seconds > 0:
                yield env.timeout(step.seconds)
            return None
        if isinstance(step, fx.Now):
            return env.now
        if isinstance(step, fx.Connect):
            side = yield self.network.connect(
                self.host, step.endpoint, step.options
            )
            return side
        if isinstance(step, fx.Send):
            yield step.channel.send(step.data)
            return None
        if isinstance(step, fx.Recv):
            recv_event = step.channel.recv(step.max_bytes)
            if step.timeout is None:
                data = yield recv_event
                return data
            timer = env.timeout(step.timeout)
            yield recv_event | timer
            if recv_event.processed:
                return recv_event.value
            raise TransferTimeout(
                f"recv on {step.channel.local} timed out "
                f"after {step.timeout}s"
            )
        if isinstance(step, fx.Close):
            step.channel.close()
            return None
        if isinstance(step, fx.Abort):
            step.channel.abort()
            return None
        if isinstance(step, fx.Spawn):
            return TaskHandle(
                env.process(self._interpret(step.op)), step.name
            )
        if isinstance(step, fx.Join):
            value = yield step.task.impl
            return value
        if isinstance(step, fx.Accept):
            side = yield step.listener.accept()
            return side
        if isinstance(step, fx.MakePromise):
            from repro.concurrency.promise import SimPromise

            return SimPromise(env)
        if isinstance(step, fx.Await):
            wait_event = step.promise._wait_event()
            if step.timeout is None:
                value = yield wait_event
                return value
            timer = env.timeout(step.timeout)
            yield wait_event | timer
            if wait_event.processed:
                return wait_event.value
            raise TransferTimeout(
                f"promise await timed out after {step.timeout}s"
            )
        raise TypeError(f"unknown effect {step!r}")
