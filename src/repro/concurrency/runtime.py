"""Runtime interface shared by the simulator and socket interpreters."""

from __future__ import annotations

from typing import Any, Generator, Optional

__all__ = ["Runtime", "TaskHandle"]


class TaskHandle:
    """Opaque handle to a spawned operation.

    The concrete runtime stores what it needs in ``impl`` (a kernel
    process or a thread + result slot). Join via the
    :class:`~repro.concurrency.effects.Join` effect, or
    :meth:`Runtime.join` from outside any operation.
    """

    __slots__ = ("impl", "name")

    def __init__(self, impl: Any, name: str = ""):
        self.impl = impl
        self.name = name

    def __repr__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return f"<TaskHandle{label}>"


class Runtime:
    """Executes effect generators; see :mod:`repro.concurrency.effects`.

    Sub-classes provide:

    * :meth:`run` — execute an operation to completion, returning its
      value (drives the whole world in the simulator; runs inline on the
      calling thread for sockets);
    * :meth:`spawn` — start an operation concurrently;
    * :meth:`join` — wait for a spawned task from *outside* operations;
    * :meth:`listen` — open a listener handle usable with ``Accept``;
    * :meth:`now` — current time in seconds.
    """

    def run(self, op: Generator) -> Any:
        raise NotImplementedError

    def spawn(self, op: Generator, name: str = "") -> TaskHandle:
        raise NotImplementedError

    def join(self, task: TaskHandle) -> Any:
        raise NotImplementedError

    def listen(self, port: int, host: Optional[str] = None) -> Any:
        raise NotImplementedError

    def now(self) -> float:
        raise NotImplementedError
