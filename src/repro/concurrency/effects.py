"""Effect vocabulary for transport-agnostic protocol code.

Protocol logic (the davix client, the storage server, the XRootD
baseline) is written as generators that ``yield`` *effects* — plain
descriptions of I/O they need — and receive the result back. Two
interpreters execute them:

* :class:`~repro.concurrency.sim_runtime.SimRuntime` maps effects onto
  the discrete-event network model (benchmarks, latency studies);
* :class:`~repro.concurrency.thread_runtime.ThreadRuntime` maps them
  onto blocking sockets and OS threads (real deployments, integration
  tests).

This is the sans-io pattern applied one level up: the protocol code is
written once and never knows which world it runs in. Sub-operations
compose with ``result = yield from sub_op(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple

__all__ = [
    "Effect",
    "Sleep",
    "Now",
    "Connect",
    "Send",
    "Recv",
    "Close",
    "Abort",
    "Spawn",
    "Join",
    "Accept",
]


class Effect:
    """Base class for all effects (dispatch marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class Sleep(Effect):
    """Suspend for ``seconds`` (simulated or wall-clock).

    Protocol code also uses this to model CPU work (decompression,
    per-event analysis) so compute time advances the simulated clock.
    """

    seconds: float


@dataclass(frozen=True)
class Now(Effect):
    """Resolve to the current time (simulated seconds or ``monotonic``)."""


@dataclass(frozen=True)
class Connect(Effect):
    """Open a TCP connection to ``endpoint``; resolves to a channel.

    ``options`` is runtime-specific (a :class:`~repro.net.tcp.TcpOptions`
    for the simulator; ignored by the socket runtime).
    Raises :class:`~repro.errors.ConnectError` on failure.
    """

    endpoint: Tuple[str, int]
    options: Any = None


@dataclass(frozen=True)
class Send(Effect):
    """Write ``data`` to ``channel``; resolves once on the wire."""

    channel: Any
    data: bytes


@dataclass(frozen=True)
class Recv(Effect):
    """Read up to ``max_bytes``; resolves to bytes (``b""`` = EOF).

    Raises :class:`~repro.errors.ConnectionClosed` on reset and
    :class:`~repro.errors.TransferTimeout` when ``timeout`` expires.
    """

    channel: Any
    max_bytes: int = 65536
    timeout: Optional[float] = None


@dataclass(frozen=True)
class Close(Effect):
    """Flush and close ``channel``; it must not be used afterwards.

    Queued data still reaches the peer (graceful close).
    """

    channel: Any


@dataclass(frozen=True)
class Abort(Effect):
    """Reset ``channel`` immediately; queued data is lost."""

    channel: Any


@dataclass(frozen=True)
class Spawn(Effect):
    """Start ``op`` (an effect generator) concurrently -> task handle."""

    op: Generator
    name: str = ""


@dataclass(frozen=True)
class Join(Effect):
    """Wait for a spawned task; resolves to its return value.

    Re-raises the task's exception if it failed.
    """

    task: Any


@dataclass(frozen=True)
class Accept(Effect):
    """Wait for an inbound connection on a listener handle."""

    listener: Any


@dataclass(frozen=True)
class MakePromise(Effect):
    """Create a promise: a one-shot result slot.

    The resolved value is a runtime-specific promise object with
    ``resolve(value)`` / ``reject(exc)`` methods callable from *any*
    context (including synchronous callbacks).
    """


@dataclass(frozen=True)
class Await(Effect):
    """Wait for a promise; resolves to its value (or re-raises).

    Raises :class:`~repro.errors.TransferTimeout` if ``timeout``
    (seconds) elapses first.
    """

    promise: Any
    timeout: Optional[float] = None
