"""TLS performance model (paper Section 2.2, citing Coarfa et al.).

The paper rejects SPDY partly because it "explicitly enforces the usage
of SSL/TLS ... TLS introduces a negative performance impact for big
data transfers and introduces a handshake latency". This module models
both costs so the claim is measurable:

* a **handshake** of four flights (ClientHello, ServerHello+Certificate,
  ClientKeyExchange, Finished) — two extra round trips on the wire plus
  asymmetric-crypto CPU on both ends;
* **record-layer CPU**: every payload byte costs
  ``1/crypto_bandwidth`` seconds of symmetric crypto on each endpoint.

Both sides are plain effect sub-ops (real messages cross the channel),
so the round trips are *emergent* from the network model, not constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concurrency.effects import Recv, Send, Sleep
from repro.errors import ConnectionClosed, HttpProtocolError

__all__ = ["TlsPolicy", "client_handshake", "server_handshake"]

CLIENT_HELLO = b"TLS1 CLIENTHELLO" + bytes(184)  # ~200 B
KEY_EXCHANGE = b"TLS1 KEYEXCHANGE" + bytes(284)  # ~300 B
FINISHED = b"TLS1 FINISHED---" + bytes(84)  # ~100 B


@dataclass(frozen=True)
class TlsPolicy:
    """Cost constants of the TLS model.

    Defaults approximate 2014-era OpenSSL on a Xeon: ~2 ms of
    asymmetric crypto per handshake side, AES+SHA at ~200 MB/s.
    """

    certificate_size: int = 3000
    handshake_cpu: float = 0.002
    crypto_bandwidth: float = 200e6

    def record_cost(self, nbytes: int) -> float:
        """Symmetric-crypto CPU seconds for ``nbytes`` of payload."""
        return nbytes / self.crypto_bandwidth


def _recv_exact(channel, n: int):
    """Effect sub-op: read exactly n bytes (handshake flights)."""
    buf = bytearray()
    while len(buf) < n:
        data = yield Recv(channel, max_bytes=n - len(buf))
        if not data:
            raise ConnectionClosed("peer closed during TLS handshake")
        buf.extend(data)
    return bytes(buf)


def client_handshake(channel, policy: TlsPolicy):
    """Effect sub-op: the client side of the handshake (2 RTTs)."""
    yield Send(channel, CLIENT_HELLO)
    certificate = yield from _recv_exact(
        channel, policy.certificate_size
    )
    if not certificate.startswith(b"TLS1 CERT"):
        raise HttpProtocolError(
            "peer did not present a TLS certificate (https against a "
            "plain-http port?)"
        )
    yield Sleep(policy.handshake_cpu)  # verify cert + key exchange
    yield Send(channel, KEY_EXCHANGE)
    finished = yield from _recv_exact(channel, len(FINISHED))
    if not finished.startswith(b"TLS1 FINISHED"):
        raise HttpProtocolError("bad TLS Finished message")


def server_handshake(channel, policy: TlsPolicy):
    """Effect sub-op: the server side of the handshake."""
    hello = yield from _recv_exact(channel, len(CLIENT_HELLO))
    if not hello.startswith(b"TLS1 CLIENTHELLO"):
        raise HttpProtocolError("not a TLS ClientHello")
    certificate = b"TLS1 CERT" + bytes(policy.certificate_size - 9)
    yield Send(channel, certificate)
    yield from _recv_exact(channel, len(KEY_EXCHANGE))
    yield Sleep(policy.handshake_cpu)  # private-key operation
    yield Send(channel, FINISHED)
