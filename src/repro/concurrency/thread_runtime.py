"""Effect interpreter over blocking sockets and OS threads.

This is the "real world" runtime: the same davix/server operations that
run inside the simulator execute here against actual TCP sockets —
used by the integration tests, the CLI tools and the real-server
example. ``TCP_NODELAY`` is set on every connection, matching davix.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Generator, Optional, Tuple

from repro.concurrency import effects as fx
from repro.concurrency.runtime import Runtime, TaskHandle
from repro.errors import ConnectError, ConnectionClosed, TransferTimeout

__all__ = ["ThreadRuntime", "SocketChannel", "SocketListener"]


class SocketChannel:
    """A connected TCP socket with the channel surface effects expect."""

    def __init__(self, sock: socket.socket, local: str, remote: Tuple):
        self.sock = sock
        self.local = local
        self.remote = remote
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        # Leave the fd open briefly so in-flight data drains; the peer's
        # EOF read completes the exchange. Full close happens on GC or
        # abort. Pool code always recv()s to EOF before discarding.
        try:
            self.sock.close()
        except OSError:
            pass

    def abort(self) -> None:
        self._closed = True
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                # l_onoff=1, l_linger=0 -> RST on close
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketListener:
    """A listening socket; produces :class:`SocketChannel` on accept."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.closed = False

    @property
    def port(self) -> int:
        return self.sock.getsockname()[1]

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass


class _Task:
    """Thread + result slot backing a spawned operation."""

    def __init__(self, runtime: "ThreadRuntime", op: Generator, name: str):
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._main, args=(runtime, op), name=name or None,
            daemon=True,
        )
        self.thread.start()

    def _main(self, runtime: "ThreadRuntime", op: Generator) -> None:
        try:
            self.result = runtime.run(op)
        except BaseException as exc:  # stored, re-raised at join
            self.failure = exc

    def join(self) -> Any:
        self.thread.join()
        if self.failure is not None:
            raise self.failure
        return self.result


class ThreadRuntime(Runtime):
    """Run effect generators on the calling OS thread with real sockets."""

    def __init__(self, connect_timeout: float = 5.0):
        self.connect_timeout = connect_timeout

    # -- Runtime interface ----------------------------------------------------

    def run(self, op: Generator) -> Any:
        result: Any = None
        failure: Optional[BaseException] = None
        while True:
            try:
                if failure is not None:
                    step = op.throw(failure)
                else:
                    step = op.send(result)
            except StopIteration as stop:
                return stop.value
            result, failure = None, None
            try:
                result = self._perform(step)
            except Exception as exc:
                failure = exc

    def spawn(self, op: Generator, name: str = "") -> TaskHandle:
        return TaskHandle(_Task(self, op, name), name)

    def join(self, task: TaskHandle) -> Any:
        return task.impl.join()

    def listen(self, port: int = 0, host: Optional[str] = None) -> Any:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host or "127.0.0.1", port))
        sock.listen(64)
        return SocketListener(sock)

    def now(self) -> float:
        return time.monotonic()

    # -- effect execution -------------------------------------------------------

    def _perform(self, step: fx.Effect) -> Any:
        if isinstance(step, fx.Sleep):
            if step.seconds > 0:
                time.sleep(step.seconds)
            return None
        if isinstance(step, fx.Now):
            return time.monotonic()
        if isinstance(step, fx.Connect):
            return self._connect(step.endpoint)
        if isinstance(step, fx.Send):
            try:
                step.channel.sock.sendall(step.data)
            except OSError as exc:
                raise ConnectionClosed(f"send failed: {exc}") from exc
            return None
        if isinstance(step, fx.Recv):
            return self._recv(step)
        if isinstance(step, fx.Close):
            step.channel.close()
            return None
        if isinstance(step, fx.Abort):
            step.channel.abort()
            return None
        if isinstance(step, fx.Spawn):
            return self.spawn(step.op, step.name)
        if isinstance(step, fx.Join):
            return step.task.impl.join()
        if isinstance(step, fx.Accept):
            return self._accept(step.listener)
        if isinstance(step, fx.MakePromise):
            from repro.concurrency.promise import ThreadPromise

            return ThreadPromise()
        if isinstance(step, fx.Await):
            try:
                return step.promise._wait(step.timeout)
            except TimeoutError:
                raise TransferTimeout(
                    f"promise await timed out after {step.timeout}s"
                ) from None
        raise TypeError(f"unknown effect {step!r}")

    def _connect(self, endpoint: Tuple[str, int]) -> SocketChannel:
        try:
            sock = socket.create_connection(
                endpoint, timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ConnectError(
                f"connect to {endpoint[0]}:{endpoint[1]} failed: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return SocketChannel(
            sock, local=sock.getsockname()[0], remote=endpoint
        )

    def _recv(self, step: fx.Recv) -> bytes:
        sock = step.channel.sock
        sock.settimeout(step.timeout)
        try:
            return sock.recv(step.max_bytes)
        except socket.timeout as exc:
            raise TransferTimeout(
                f"recv timed out after {step.timeout}s"
            ) from exc
        except OSError as exc:
            raise ConnectionClosed(f"recv failed: {exc}") from exc
        finally:
            try:
                sock.settimeout(None)
            except OSError:
                pass

    def _accept(self, listener: SocketListener) -> SocketChannel:
        try:
            sock, addr = listener.sock.accept()
        except OSError as exc:
            raise ConnectionClosed(f"accept failed: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return SocketChannel(sock, local="server", remote=addr)
