"""Exception hierarchy for the repro package.

The hierarchy mirrors the error domains of the original davix toolkit
(``DavixError`` with a status code and scope string) while adding the
simulation- and transport-level errors that this reproduction needs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-kernel errors."""


class StopSimulation(SimulationError):
    """Raised internally to stop :meth:`Environment.run` early."""


class ProcessInterrupt(SimulationError):
    """Delivered into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


# ---------------------------------------------------------------------------
# Network / transport errors
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for transport-level failures."""


class ConnectError(NetworkError):
    """Connection could not be established (host down, refused, timeout)."""


class ConnectionClosed(NetworkError):
    """The peer closed the connection mid-operation."""


class TransferTimeout(NetworkError):
    """A transfer did not complete within its deadline."""


class DeadlineExceeded(TransferTimeout):
    """A per-operation time budget (``RequestParams.deadline``) ran out.

    Unlike a plain :class:`TransferTimeout` this is *final*: the retry
    loop and the fail-over driver re-raise it instead of trying again,
    because further attempts cannot fit in the spent budget.
    """

    def __init__(self, budget=None):
        detail = (
            f"deadline of {budget}s exceeded"
            if budget is not None
            else "deadline exceeded"
        )
        super().__init__(detail)
        self.budget = budget


class CircuitOpenError(ConnectError):
    """A request was short-circuited by an open circuit breaker.

    Subclasses :class:`ConnectError` so every layer that knows how to
    route around an unreachable endpoint (fail-over, multistream)
    treats a tripped breaker the same way — without paying for a real
    connection attempt.
    """

    def __init__(self, origin):
        super().__init__(f"circuit open for {origin}")
        self.origin = origin


# ---------------------------------------------------------------------------
# HTTP protocol errors
# ---------------------------------------------------------------------------


class HttpError(ReproError):
    """Base class for HTTP protocol violations and parse failures."""


class HttpParseError(HttpError):
    """Malformed HTTP message on the wire."""


class HttpProtocolError(HttpError):
    """A well-formed message that violates protocol expectations."""


# ---------------------------------------------------------------------------
# davix (client library) errors — mirrors Davix::StatusCode
# ---------------------------------------------------------------------------


class DavixError(ReproError):
    """Client-level error with a scope and an HTTP-ish status code.

    Parameters
    ----------
    scope:
        Short string identifying the subsystem ("pool", "request",
        "failover", ...), mirroring davix's error scopes.
    message:
        Human-readable description.
    status:
        Optional HTTP status code associated with the failure.
    """

    def __init__(self, scope: str, message: str, status: int | None = None):
        super().__init__(f"[{scope}] {message}")
        self.scope = scope
        self.message = message
        self.status = status


class RequestError(DavixError):
    """The HTTP exchange itself failed (I/O error, bad response)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__("request", message, status)


class RedirectLoopError(DavixError):
    """Too many redirects while resolving a resource."""

    def __init__(self, url: str, limit: int):
        super().__init__(
            "request", f"redirect limit {limit} exceeded for {url}"
        )
        self.url = url
        self.limit = limit


class FileNotFound(DavixError):
    """Remote resource does not exist (HTTP 404)."""

    def __init__(self, path: str):
        super().__init__("file", f"no such remote resource: {path}", 404)
        self.path = path


class PermissionDenied(DavixError):
    """Remote resource is not accessible (HTTP 401/403)."""

    def __init__(self, path: str, status: int = 403):
        super().__init__("file", f"access denied: {path}", status)
        self.path = path


class AllReplicasFailed(DavixError):
    """Every replica listed by the Metalink was tried and failed."""

    def __init__(self, path: str, attempts: list):
        detail = "; ".join(str(a) for a in attempts) or "no replica listed"
        super().__init__(
            "failover", f"all replicas failed for {path}: {detail}"
        )
        self.path = path
        self.attempts = attempts


class ChecksumMismatch(DavixError):
    """Downloaded content does not match the Metalink checksum."""

    def __init__(self, path: str, expected: str, actual: str):
        super().__init__(
            "multistream",
            f"checksum mismatch for {path}: expected {expected}, got {actual}",
        )
        self.path = path
        self.expected = expected
        self.actual = actual


# ---------------------------------------------------------------------------
# XRootD baseline errors
# ---------------------------------------------------------------------------


class XrootdError(ReproError):
    """Base class for XRootD protocol failures."""

    def __init__(self, message: str, code: int | None = None):
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# ROOT-like file format errors
# ---------------------------------------------------------------------------


class RootIOError(ReproError):
    """Corrupt or inconsistent tree-file content."""


class PageChecksumError(RootIOError):
    """A columnar page failed its stored adler32 checksum on decode.

    Raised before decompression is attempted, so damaged bytes are
    never silently handed to an analysis — corruption always surfaces
    as this typed error.
    """


class MetalinkError(ReproError):
    """Malformed Metalink document."""
