"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`Environment` owns a time-ordered event heap; :class:`Process`
wraps a generator that ``yield``\\ s :class:`Event` objects and is resumed
when they fire.

The kernel is deliberately deterministic: events scheduled for the same
simulated time fire in scheduling order (a monotonically increasing
sequence number breaks ties), so every simulation run with the same seed
produces identical timings.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import ProcessInterrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
]

#: Sentinel stored in :attr:`Event._value` while the event is untriggered.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    triggers it and schedules its callbacks to run at the current
    simulation time. Processes wait on events by yielding them.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: True once the event's callbacks have been scheduled.
        self._scheduled = False
        #: Set when a failure value was retrieved (suppresses the
        #: "unhandled failure" check).
        self._defused = False

    # -- state -------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception as its value."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator yields :class:`Event` instances; the process resumes
    with the event's value (``event.value`` is sent into the generator,
    or raised into it if the event failed).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"not a generator: {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`ProcessInterrupt` inside the process.

        The process is rescheduled immediately; the event it was waiting
        for keeps running but its eventual value is discarded.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("process not waiting (initialising)")
        # Detach from the current target so its trigger no longer resumes us.
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(ProcessInterrupt(cause))
        interrupt_event._defused = True
        self._target = None

    # -- internal ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                step = self._generator.send(event._value)
            else:
                event._defused = True
                step = self._generator.throw(event._value)
        except StopIteration as exc:
            self._target = None
            self.env._active_process = None
            self.succeed(exc.value)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(step, Event):
            raise SimulationError(
                f"process yielded a non-event: {step!r} "
                f"(from {self._generator!r})"
            )
        self._target = step
        if step.callbacks is not None:
            step.callbacks.append(self._resume)
        else:
            # Already processed: resume immediately via a proxy event.
            proxy = Event(self.env)
            proxy.callbacks.append(self._resume)
            proxy.trigger(step)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        return f"<Process {name} alive={self.is_alive}>"


class Condition(Event):
    """Fires when ``evaluate(events, n_done)`` becomes true.

    The value is an ordered dict-like mapping of the *triggered* events to
    their values, preserving the order events were passed in.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        # An event only counts once *processed* — Timeouts carry their value
        # from construction, so `triggered` alone would include pending ones.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every event in the set has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count == len(events), events)


class AnyOf(Condition):
    """Fires as soon as any event in the set fires."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


class Environment:
    """Execution environment: clock plus event heap."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_at = None
        stop_event = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})"
                )

        try:
            while self._queue:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before `until` fired"
                )
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value
