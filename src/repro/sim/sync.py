"""Higher-level synchronisation helpers built on the kernel.

These are the coordination primitives the protocol clients use inside
the simulator: a broadcast :class:`Signal`, a one-shot :class:`Gate`,
and a :class:`Mailbox` with close semantics (an EOF-aware Store).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

__all__ = ["Signal", "Gate", "Mailbox", "EOF"]

#: Sentinel delivered by :class:`Mailbox` once closed and drained.
EOF = object()


class Signal:
    """Broadcast signal: every waiter outstanding at ``fire`` time wakes."""

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`fire` call."""
        event = Event(self.env)
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        woken = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed(value)
        return woken


class Gate:
    """One-shot latch: ``wait`` fires immediately once ``open`` was called."""

    def __init__(self, env: Environment):
        self.env = env
        self._opened = False
        self._value: Any = None
        self._failure: Optional[BaseException] = None
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._opened

    def open(self, value: Any = None) -> None:
        """Open the gate, releasing current and future waiters."""
        if self._opened:
            raise SimulationError("gate already open")
        self._opened = True
        self._value = value
        while self._waiters:
            self._waiters.popleft().succeed(value)

    def fail(self, exc: BaseException) -> None:
        """Open the gate with a failure; waiters receive the exception."""
        if self._opened:
            raise SimulationError("gate already open")
        self._opened = True
        self._failure = exc
        while self._waiters:
            event = self._waiters.popleft()
            event.fail(exc)
            event._defused = True

    def wait(self) -> Event:
        event = Event(self.env)
        if self._opened:
            if self._failure is not None:
                event.fail(self._failure)
                event._defused = True
            else:
                event.succeed(self._value)
        else:
            self._waiters.append(event)
        return event


class Mailbox:
    """FIFO of items with close semantics.

    After :meth:`close`, queued items are still delivered; once drained,
    every ``get`` resolves immediately with :data:`EOF`.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        if self._closed:
            raise SimulationError("put() on closed mailbox")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.succeed(EOF)
        else:
            self._getters.append(event)
        return event

    def close(self) -> None:
        """Close the mailbox; pending getters receive :data:`EOF`."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().succeed(EOF)
