"""Discrete-event simulation kernel (SimPy-style, dependency-free)."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.sync import EOF, Gate, Mailbox, Signal

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Container",
    "Resource",
    "Store",
    "EOF",
    "Gate",
    "Mailbox",
    "Signal",
]
