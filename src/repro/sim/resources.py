"""Shared-resource primitives for the simulation kernel.

Provides the two resource types the network model needs:

* :class:`Resource` — a counted resource with a FIFO wait queue (used to
  model link occupancy and server worker slots).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (used for mailboxes such as TCP receive buffers and accept queues).
* :class:`Container` — a continuous-level reservoir with blocking
  ``get``/``put`` (used for window/credit accounting).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Environment, Event

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...  # holding one slot
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._grant_or_enqueue(self)

    def release(self) -> None:
        """Give the slot back (or withdraw from the queue if not granted)."""
        self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Resource:
    """Counted resource with ``capacity`` slots and a FIFO queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        return Request(self)

    def _grant_or_enqueue(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._queue.append(req)

    def _release(self, req: Request) -> None:
        if req in self._users:
            self._users.remove(req)
            if self._queue:
                nxt = self._queue.popleft()
                self._users.append(nxt)
                nxt.succeed()
        else:
            try:
                self._queue.remove(req)
            except ValueError:
                pass  # released twice; harmless


class Store:
    """Unbounded FIFO store of items with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Container:
    """Continuous reservoir holding a ``level`` between 0 and ``capacity``.

    ``get(amount)`` blocks until the level allows it; ``put(amount)``
    blocks until capacity allows it. Pending gets are served FIFO.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if init < 0 or init > capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple] = deque()  # (event, amount)
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once the level covers it."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progressed = True
