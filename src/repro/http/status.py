"""HTTP status codes and classification helpers."""

from __future__ import annotations

__all__ = [
    "REASONS",
    "reason_phrase",
    "is_informational",
    "is_success",
    "is_redirect",
    "is_client_error",
    "is_server_error",
    "is_error",
    "is_retriable",
    "allows_body",
]

REASONS = {
    100: "Continue",
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    206: "Partial Content",
    207: "Multi-Status",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    412: "Precondition Failed",
    416: "Range Not Satisfiable",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    507: "Insufficient Storage",
}


def reason_phrase(status: int) -> str:
    """Standard reason phrase for ``status`` ("Unknown" if unmapped)."""
    return REASONS.get(status, "Unknown")


def is_informational(status: int) -> bool:
    """1xx?"""
    return 100 <= status < 200


def is_success(status: int) -> bool:
    """2xx?"""
    return 200 <= status < 300


def is_redirect(status: int) -> bool:
    """Redirects a client should follow (304 is *not* one of them)."""
    return status in (301, 302, 303, 307, 308)


def is_client_error(status: int) -> bool:
    """4xx?"""
    return 400 <= status < 500


def is_server_error(status: int) -> bool:
    """5xx?"""
    return 500 <= status < 600


def is_error(status: int) -> bool:
    """4xx or 5xx?"""
    return status >= 400


def is_retriable(status: int) -> bool:
    """Errors worth retrying on another replica (failover policy)."""
    return status in (500, 502, 503, 504)


def allows_body(status: int) -> bool:
    """False for statuses whose responses never carry a body."""
    return not (is_informational(status) or status in (204, 304))
