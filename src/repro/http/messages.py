"""HTTP request and response value types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.http.headers import Headers
from repro.http.status import allows_body, reason_phrase

__all__ = ["Request", "Response"]

#: Methods whose requests never carry a body.
BODYLESS_METHODS = frozenset(
    {"GET", "HEAD", "DELETE", "OPTIONS", "MKCOL", "COPY", "MOVE"}
)


@dataclass
class Request:
    """An HTTP request.

    ``target`` is the request-target as it appears on the request line
    (path plus optional query); the ``Host`` header is added by the
    codec/serialiser if absent.
    """

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self):
        self.method = self.method.upper()
        if not isinstance(self.headers, Headers):
            self.headers = Headers(self.headers)
        if self.body and self.method in BODYLESS_METHODS:
            # Tolerated by HTTP, but our server/client never do this; it
            # is almost always a caller bug.
            raise ValueError(f"{self.method} request must not carry a body")

    @property
    def path(self) -> str:
        """Request-target without the query string."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> str:
        parts = self.target.split("?", 1)
        return parts[1] if len(parts) > 1 else ""

    def wants_keep_alive(self) -> bool:
        """Does the client ask to keep the connection open?"""
        if self.headers.contains_token("Connection", "close"):
            return False
        if self.version == "HTTP/1.0":
            return self.headers.contains_token("Connection", "keep-alive")
        return True

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.target}>"


@dataclass
class Response:
    """An HTTP response."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    reason: Optional[str] = None
    version: str = "HTTP/1.1"

    def __post_init__(self):
        if not isinstance(self.headers, Headers):
            self.headers = Headers(self.headers)
        if self.reason is None:
            self.reason = reason_phrase(self.status)
        if self.body and not allows_body(self.status):
            raise ValueError(f"status {self.status} must not carry a body")

    @property
    def ok(self) -> bool:
        """True for any 2xx status."""
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def keep_alive(self) -> bool:
        """Does the server intend to keep the connection open?"""
        if self.headers.contains_token("Connection", "close"):
            return False
        if self.version == "HTTP/1.0":
            return self.headers.contains_token("Connection", "keep-alive")
        return True

    def __repr__(self) -> str:
        return f"<Response {self.status} {self.reason}>"
