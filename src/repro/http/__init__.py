"""Sans-io HTTP/1.1 stack: messages, ranges, multipart, wire codec."""

from repro.http.codec import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    HttpParser,
    serialize_request,
    serialize_response,
    serialize_response_head,
)
from repro.http.headers import Headers, parse_cache_control
from repro.http.messages import Request, Response
from repro.http.multipart import (
    RangePart,
    decode_byteranges,
    encode_byteranges,
    make_boundary,
)
from repro.http.ranges import (
    RangeSpec,
    format_content_range,
    format_range_header,
    parse_content_range,
    parse_range_header,
    resolve_ranges,
)
from repro.http.uri import Url

__all__ = [
    "CONNECTION_CLOSED",
    "NEED_DATA",
    "Data",
    "EndOfMessage",
    "HttpParser",
    "serialize_request",
    "serialize_response",
    "serialize_response_head",
    "Headers",
    "parse_cache_control",
    "Request",
    "Response",
    "RangePart",
    "decode_byteranges",
    "encode_byteranges",
    "make_boundary",
    "RangeSpec",
    "format_content_range",
    "format_range_header",
    "parse_content_range",
    "parse_range_header",
    "resolve_ranges",
    "Url",
]
