"""Sans-io HTTP/1.x wire codec.

The parser is transport-agnostic (in the spirit of h11): bytes go in via
:meth:`HttpParser.receive_data`, protocol events come out of
:meth:`HttpParser.next_event`. Both the simulated transport and the real
socket transport drive this same state machine, so the protocol logic is
tested once and reused everywhere.

Events emitted:

* a :class:`~repro.http.messages.Request` or
  :class:`~repro.http.messages.Response` (head only, ``body=b""``);
* :class:`Data` — one chunk of body bytes;
* :class:`EndOfMessage` — the message body is complete;
* :data:`NEED_DATA` — feed more bytes;
* :data:`CONNECTION_CLOSED` — clean EOF between messages.

Supported framing: ``Content-Length``, ``Transfer-Encoding: chunked``,
bodyless statuses/methods, and read-until-EOF responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional, Union

from collections import deque

from repro.errors import HttpParseError, HttpProtocolError
from repro.http.headers import Headers
from repro.http.messages import BODYLESS_METHODS, Request, Response
from repro.http.status import allows_body

__all__ = [
    "NEED_DATA",
    "CONNECTION_CLOSED",
    "Data",
    "EndOfMessage",
    "HttpParser",
    "serialize_request",
    "serialize_response",
    "serialize_response_head",
    "encode_chunk",
    "encode_last_chunk",
]

#: The parser needs more bytes before it can emit the next event.
NEED_DATA = "NEED_DATA"
#: The peer closed the connection cleanly between messages.
CONNECTION_CLOSED = "CONNECTION_CLOSED"

MAX_HEAD_BYTES = 65536
CRLF = b"\r\n"
HEAD_TERMINATOR = b"\r\n\r\n"


@dataclass(frozen=True)
class Data:
    """A chunk of message-body bytes."""

    data: bytes


@dataclass(frozen=True)
class EndOfMessage:
    """The current message's body is complete."""


Event = Union[str, Request, Response, Data, EndOfMessage]

# Parser states
_IDLE = "IDLE"
_BODY_LENGTH = "BODY_LENGTH"
_BODY_CHUNK_HEADER = "BODY_CHUNK_HEADER"
_BODY_CHUNK_DATA = "BODY_CHUNK_DATA"
_BODY_CHUNK_TRAILER = "BODY_CHUNK_TRAILER"
_BODY_EOF = "BODY_EOF"
_CLOSED = "CLOSED"


class HttpParser:
    """Incremental HTTP/1.x message parser.

    ``role="server"`` parses requests; ``role="client"`` parses
    responses. A client must announce each request it sent with
    :meth:`expect_response_to` so bodyless responses (HEAD, 204, 304)
    are framed correctly — the queue also makes the parser
    pipelining-safe.
    """

    def __init__(self, role: str):
        if role not in ("client", "server"):
            raise ValueError(f"bad role {role!r}")
        self.role = role
        self._buffer = bytearray()
        self._eof = False
        self._state = _IDLE
        self._remaining = 0
        self._pending_methods: Deque[str] = deque()
        self._emitted_closed = False

    # -- input -------------------------------------------------------------

    def receive_data(self, data: bytes) -> None:
        """Feed bytes from the transport; ``b""`` means EOF."""
        if data:
            if self._eof:
                raise HttpParseError("data received after EOF")
            self._buffer.extend(data)
        else:
            self._eof = True

    def expect_response_to(self, method: str) -> None:
        """Register an outgoing request's method (client role only)."""
        if self.role != "client":
            raise HttpProtocolError("only clients expect responses")
        self._pending_methods.append(method.upper())

    # -- output ------------------------------------------------------------

    def next_event(self) -> Event:
        """Return the next protocol event or :data:`NEED_DATA`."""
        if self._state == _IDLE:
            return self._parse_head()
        if self._state == _BODY_LENGTH:
            return self._parse_length_body()
        if self._state == _BODY_CHUNK_HEADER:
            return self._parse_chunk_header()
        if self._state == _BODY_CHUNK_DATA:
            return self._parse_chunk_data()
        if self._state == _BODY_CHUNK_TRAILER:
            return self._parse_chunk_trailer()
        if self._state == _BODY_EOF:
            return self._parse_eof_body()
        if self._state == _CLOSED:
            return CONNECTION_CLOSED
        raise AssertionError(f"bad state {self._state}")

    # -- head parsing ---------------------------------------------------------

    def _parse_head(self) -> Event:
        end = self._buffer.find(HEAD_TERMINATOR)
        if end < 0:
            if len(self._buffer) > MAX_HEAD_BYTES:
                raise HttpParseError("header block too large")
            if self._eof:
                if not self._buffer and not self._emitted_closed:
                    self._state = _CLOSED
                    self._emitted_closed = True
                    return CONNECTION_CLOSED
                if not self._buffer:
                    return CONNECTION_CLOSED
                raise HttpParseError("EOF inside message head")
            return NEED_DATA

        blob = bytes(self._buffer[:end])
        del self._buffer[: end + len(HEAD_TERMINATOR)]
        lines = blob.split(CRLF)
        start_line = lines[0].decode("ascii", "replace")
        headers = self._parse_header_lines(lines[1:])

        if self.role == "server":
            message = self._build_request(start_line, headers)
            self._setup_request_body(message)
        else:
            message = self._build_response(start_line, headers)
            self._setup_response_body(message)
        return message

    @staticmethod
    def _parse_header_lines(lines: List[bytes]) -> Headers:
        headers = Headers()
        for raw in lines:
            if not raw:
                continue
            if raw[:1] in (b" ", b"\t"):
                raise HttpParseError("obsolete header folding not supported")
            name, sep, value = raw.partition(b":")
            if not sep:
                raise HttpParseError(f"malformed header line {raw!r}")
            headers.add(
                name.decode("ascii", "replace").strip(),
                value.decode("ascii", "replace").strip(),
            )
        return headers

    @staticmethod
    def _build_request(start_line: str, headers: Headers) -> Request:
        parts = start_line.split(" ")
        if len(parts) != 3:
            raise HttpParseError(f"malformed request line {start_line!r}")
        method, target, version = parts
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise HttpParseError(f"unsupported version {version!r}")
        return Request(
            method=method, target=target, headers=headers, version=version
        )

    @staticmethod
    def _build_response(start_line: str, headers: Headers) -> Response:
        parts = start_line.split(" ", 2)
        if len(parts) < 2:
            raise HttpParseError(f"malformed status line {start_line!r}")
        version = parts[0]
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise HttpParseError(f"unsupported version {version!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpParseError(f"non-numeric status in {start_line!r}")
        reason = parts[2] if len(parts) > 2 else ""
        return Response(
            status=status, headers=headers, reason=reason, version=version
        )

    # -- body framing -----------------------------------------------------------

    def _setup_request_body(self, request: Request) -> None:
        if request.headers.contains_token("Transfer-Encoding", "chunked"):
            self._state = _BODY_CHUNK_HEADER
            return
        length = request.headers.get_int("Content-Length")
        if length:
            self._remaining = length
            self._state = _BODY_LENGTH
        else:
            self._finish_body()

    def _setup_response_body(self, response: Response) -> None:
        method = (
            self._pending_methods.popleft()
            if self._pending_methods
            else "GET"
        )
        if method == "HEAD" or not allows_body(response.status):
            self._finish_body()
            return
        if response.headers.contains_token("Transfer-Encoding", "chunked"):
            self._state = _BODY_CHUNK_HEADER
            return
        length = response.headers.get_int("Content-Length")
        if length is None:
            self._state = _BODY_EOF
        elif length == 0:
            self._finish_body()
        else:
            self._remaining = length
            self._state = _BODY_LENGTH

    def _finish_body(self) -> None:
        # No body: the next event must be EndOfMessage, then back to IDLE.
        self._state = _BODY_LENGTH
        self._remaining = 0

    # -- body parsing ---------------------------------------------------------

    def _parse_length_body(self) -> Event:
        if self._remaining == 0:
            self._state = _IDLE
            return EndOfMessage()
        if not self._buffer:
            if self._eof:
                raise HttpParseError(
                    f"EOF with {self._remaining} body bytes missing"
                )
            return NEED_DATA
        take = min(self._remaining, len(self._buffer))
        data = bytes(self._buffer[:take])
        del self._buffer[:take]
        self._remaining -= take
        return Data(data)

    def _parse_eof_body(self) -> Event:
        if self._buffer:
            data = bytes(self._buffer)
            self._buffer.clear()
            return Data(data)
        if self._eof:
            self._state = _CLOSED
            return EndOfMessage()
        return NEED_DATA

    def _parse_chunk_header(self) -> Event:
        end = self._buffer.find(CRLF)
        if end < 0:
            if self._eof:
                raise HttpParseError("EOF inside chunk header")
            return NEED_DATA
        line = bytes(self._buffer[:end]).split(b";", 1)[0].strip()
        del self._buffer[: end + 2]
        try:
            size = int(line, 16)
        except ValueError:
            raise HttpParseError(f"bad chunk size {line!r}")
        if size == 0:
            self._state = _BODY_CHUNK_TRAILER
            return self.next_event()
        self._remaining = size
        self._state = _BODY_CHUNK_DATA
        return self.next_event()

    def _parse_chunk_data(self) -> Event:
        if self._remaining > 0:
            if not self._buffer:
                if self._eof:
                    raise HttpParseError("EOF inside chunk data")
                return NEED_DATA
            take = min(self._remaining, len(self._buffer))
            data = bytes(self._buffer[:take])
            del self._buffer[:take]
            self._remaining -= take
            return Data(data)
        # Consume the CRLF after the chunk payload.
        if len(self._buffer) < 2:
            if self._eof:
                raise HttpParseError("EOF after chunk data")
            return NEED_DATA
        if self._buffer[:2] != CRLF:
            raise HttpParseError("chunk data not followed by CRLF")
        del self._buffer[:2]
        self._state = _BODY_CHUNK_HEADER
        return self.next_event()

    def _parse_chunk_trailer(self) -> Event:
        # After the zero chunk: optional trailer lines, then a blank line.
        end = self._buffer.find(CRLF)
        if end < 0:
            if self._eof:
                raise HttpParseError("EOF inside chunked trailer")
            return NEED_DATA
        line = bytes(self._buffer[:end])
        del self._buffer[: end + 2]
        if line:
            return self.next_event()  # discard trailer header
        self._state = _IDLE
        return EndOfMessage()


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def _serialize_headers(headers: Headers) -> bytes:
    return b"".join(
        f"{name}: {value}\r\n".encode("latin-1")
        for name, value in headers.items()
    )


def serialize_request(request: Request) -> bytes:
    """Serialise a complete request (Content-Length added if needed)."""
    headers = request.headers.copy()
    if request.body and "Content-Length" not in headers:
        headers.set("Content-Length", len(request.body))
    if (
        not request.body
        and request.method not in BODYLESS_METHODS
        and "Content-Length" not in headers
    ):
        headers.set("Content-Length", 0)
    head = (
        f"{request.method} {request.target} {request.version}\r\n".encode(
            "latin-1"
        )
    )
    return head + _serialize_headers(headers) + CRLF + request.body


def serialize_response_head(
    response: Response, content_length: Optional[int] = None
) -> bytes:
    """Serialise the status line and headers only.

    ``content_length`` (when given and no framing header is present)
    sets the Content-Length header — used when the body is streamed.
    """
    headers = response.headers.copy()
    framed = "Content-Length" in headers or headers.contains_token(
        "Transfer-Encoding", "chunked"
    )
    if not framed and allows_body(response.status):
        length = (
            len(response.body) if content_length is None else content_length
        )
        headers.set("Content-Length", length)
    head = (
        f"{response.version} {response.status} {response.reason}\r\n".encode(
            "latin-1"
        )
    )
    return head + _serialize_headers(headers) + CRLF


def serialize_response(response: Response) -> bytes:
    """Serialise a complete response with its body."""
    return serialize_response_head(response) + response.body


def encode_chunk(data: bytes) -> bytes:
    """One chunk of a chunked body."""
    if not data:
        raise ValueError("use encode_last_chunk() for the final chunk")
    return f"{len(data):x}\r\n".encode("ascii") + data + CRLF


def encode_last_chunk() -> bytes:
    """The terminating zero chunk."""
    return b"0\r\n\r\n"
