"""``multipart/byteranges`` encoding and decoding (RFC 7233 appendix A).

A 206 response to a multi-range request carries each satisfied range as
one body part, delimited by a boundary, each part prefixed with its own
``Content-Type`` and ``Content-Range`` headers. This is the wire format
behind davix's vectored reads.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import HttpParseError
from repro.http.headers import Headers
from repro.http.ranges import format_content_range, parse_content_range

__all__ = [
    "RangePart",
    "MultipartStream",
    "make_boundary",
    "encode_byteranges",
    "decode_byteranges",
    "content_type_boundary",
]

_CRLF = b"\r\n"


@dataclass(frozen=True)
class RangePart:
    """One part of a multipart/byteranges payload.

    ``data`` is ``bytes`` from the default decode path and a zero-copy
    ``memoryview`` from ``decode_byteranges(..., copy=False)``.
    """

    offset: int
    data: bytes
    total: int  # size of the full representation

    @property
    def length(self) -> int:
        return len(self.data)


def make_boundary() -> str:
    """A random boundary token (unguessable, never appears in data *by
    construction of the encoder*, which validates)."""
    return "byterange_" + secrets.token_hex(12)


def encode_byteranges(
    parts: Sequence[RangePart],
    boundary: str,
    content_type: str = "application/octet-stream",
) -> bytes:
    """Serialise parts into a multipart/byteranges body."""
    if not parts:
        raise ValueError("multipart body needs at least one part")
    delim = f"--{boundary}".encode("ascii")
    chunks: List[bytes] = []
    for part in parts:
        chunks.append(delim)
        chunks.append(_CRLF)
        chunks.append(f"Content-Type: {content_type}".encode("ascii"))
        chunks.append(_CRLF)
        content_range = format_content_range(
            part.offset, part.length, part.total
        )
        chunks.append(f"Content-Range: {content_range}".encode("ascii"))
        chunks.append(_CRLF)
        chunks.append(_CRLF)
        chunks.append(part.data)
        chunks.append(_CRLF)
    chunks.append(delim + b"--" + _CRLF)
    return b"".join(chunks)


def content_type_boundary(content_type: str) -> str:
    """Extract the boundary parameter from a multipart Content-Type."""
    media, _, params = content_type.partition(";")
    if media.strip().lower() != "multipart/byteranges":
        raise HttpParseError(
            f"not a multipart/byteranges content type: {content_type!r}"
        )
    for param in params.split(";"):
        name, _, value = param.partition("=")
        if name.strip().lower() == "boundary":
            value = value.strip()
            if value.startswith('"') and value.endswith('"'):
                value = value[1:-1]
            if not value:
                break
            return value
    raise HttpParseError(f"no boundary in content type: {content_type!r}")


def decode_byteranges(
    body: bytes, boundary: str, copy: bool = True
) -> List[RangePart]:
    """Parse a multipart/byteranges body into its parts.

    With ``copy=False`` each part's ``data`` is a zero-copy
    ``memoryview`` slice over ``body`` (the vectored-read hot path:
    parts feed a :class:`~repro.core.vectored.PartTable` and no byte is
    copied until scatter materialises the user-facing fragments). The
    default materialises ``bytes`` per part, the historical behaviour.

    Raises :class:`HttpParseError` on structural violations (missing
    terminator, missing Content-Range, truncated part).
    """
    delim = f"--{boundary}".encode("ascii")
    closing = delim + b"--"
    view = memoryview(body) if not copy else None

    # Locate the first delimiter (a preamble is legal and ignored).
    start = body.find(delim)
    if start < 0:
        raise HttpParseError("multipart body without boundary")

    parts: List[RangePart] = []
    cursor = start
    while True:
        if body.startswith(closing, cursor):
            return parts
        if not body.startswith(delim, cursor):
            raise HttpParseError("misaligned multipart delimiter")
        cursor += len(delim)
        if body.startswith(_CRLF, cursor):
            cursor += 2
        else:
            raise HttpParseError("delimiter not followed by CRLF")

        header_end = body.find(_CRLF + _CRLF, cursor)
        if header_end < 0:
            raise HttpParseError("part headers not terminated")
        headers = _parse_part_headers(body[cursor:header_end])
        cursor = header_end + 4

        content_range = headers.get("Content-Range")
        if content_range is None:
            raise HttpParseError("part without Content-Range")
        offset, length, total = parse_content_range(content_range)
        if total is None:
            raise HttpParseError("part Content-Range without total size")

        if view is not None:
            data = view[cursor : cursor + length]
        else:
            data = body[cursor : cursor + length]
        if len(data) != length:
            raise HttpParseError(
                f"truncated part: expected {length} bytes, "
                f"got {len(data)}"
            )
        cursor += length
        if not body.startswith(_CRLF, cursor):
            raise HttpParseError("part data not followed by CRLF")
        cursor += 2
        parts.append(RangePart(offset=offset, data=data, total=total))


class MultipartStream:
    """Incremental multipart/byteranges decoder (sans-io).

    Feed body chunks as they arrive off the wire; completed
    :class:`RangePart` objects accumulate in :attr:`parts` as soon as
    their bytes are in hand. This lets the transfer engine overlap
    multipart decode with the transfer itself — by the time the last
    chunk lands, every earlier part is already decoded — instead of
    parsing the fully buffered body afterwards.

    Grammar and error behaviour match :func:`decode_byteranges`
    exactly; :meth:`close` raises :class:`HttpParseError` when the
    stream ends before the closing delimiter.
    """

    _SEEK, _DELIM, _HEADERS, _DATA, _DONE = range(5)

    def __init__(self, boundary: str):
        self._delim = f"--{boundary}".encode("ascii")
        self._closing = self._delim + b"--"
        self._buffer = bytearray()
        self._state = self._SEEK
        self._pending = None  # (offset, length, total) of the open part
        self.parts: List[RangePart] = []

    @property
    def done(self) -> bool:
        """Has the closing delimiter been consumed?"""
        return self._state == self._DONE

    def feed(self, chunk: bytes) -> None:
        """Consume one body chunk, emitting any parts it completes."""
        if self._state == self._DONE:
            return  # epilogue after the closing delimiter is ignored
        self._buffer.extend(chunk)
        self._advance()

    def close(self) -> List[RangePart]:
        """Signal end-of-body; returns the decoded parts.

        Raises :class:`HttpParseError` when the body ended mid-part or
        before the closing delimiter — the same truncation errors the
        buffered decoder raises.
        """
        if self._state != self._DONE:
            if self._state == self._DATA:
                raise HttpParseError("truncated part: body ended early")
            if self._state == self._HEADERS:
                raise HttpParseError("part headers not terminated")
            raise HttpParseError("multipart body without terminator")
        return self.parts

    def _advance(self) -> None:
        buf = self._buffer
        while True:
            if self._state == self._SEEK:
                # A preamble is legal and ignored; keep only enough
                # tail to recognise a delimiter split across chunks.
                start = buf.find(self._delim)
                if start < 0:
                    if len(buf) > len(self._delim):
                        del buf[: len(buf) - len(self._delim)]
                    return
                del buf[:start]
                self._state = self._DELIM
            elif self._state == self._DELIM:
                # Need delim + 2 bytes to tell "--boundary\r\n" (next
                # part) apart from "--boundary--" (closing).
                if len(buf) < len(self._delim) + 2:
                    return
                if buf.startswith(self._closing):
                    self._state = self._DONE
                    del buf[:]
                    return
                if not buf.startswith(self._delim + _CRLF):
                    raise HttpParseError("delimiter not followed by CRLF")
                del buf[: len(self._delim) + 2]
                self._state = self._HEADERS
            elif self._state == self._HEADERS:
                header_end = buf.find(_CRLF + _CRLF)
                if header_end < 0:
                    return
                headers = _parse_part_headers(bytes(buf[:header_end]))
                del buf[: header_end + 4]
                content_range = headers.get("Content-Range")
                if content_range is None:
                    raise HttpParseError("part without Content-Range")
                offset, length, total = parse_content_range(content_range)
                if total is None:
                    raise HttpParseError(
                        "part Content-Range without total size"
                    )
                self._pending = (offset, length, total)
                self._state = self._DATA
            elif self._state == self._DATA:
                offset, length, total = self._pending
                if len(buf) < length + 2:
                    return
                data = bytes(buf[:length])
                if not buf.startswith(_CRLF, length):
                    raise HttpParseError("part data not followed by CRLF")
                del buf[: length + 2]
                self.parts.append(
                    RangePart(offset=offset, data=data, total=total)
                )
                self._pending = None
                self._state = self._DELIM
            else:  # _DONE
                return


def _parse_part_headers(blob: bytes) -> Headers:
    headers = Headers()
    for line in blob.split(_CRLF):
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpParseError(f"malformed part header line {line!r}")
        headers.add(
            name.decode("ascii", "replace").strip(),
            value.decode("ascii", "replace").strip(),
        )
    return headers
