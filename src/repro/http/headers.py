"""Case-insensitive HTTP header multimap.

Stores headers as an ordered list of ``(name, value)`` pairs, preserving
insertion order and duplicates (required for ``Set-Cookie``-style fields
and for faithful serialisation), with case-insensitive lookup.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

__all__ = ["Headers", "parse_cache_control"]

HeaderSource = Union[
    "Headers", Iterable[Tuple[str, str]], dict, None
]


def parse_cache_control(value: Optional[str]) -> dict:
    """``Cache-Control`` directives -> ``{name: value-or-None}``.

    Directive names lower-case; valueless directives map to ``None``
    (``{"no-store": None, "max-age": "60"}``). An absent or empty
    header yields an empty dict.
    """
    directives: dict = {}
    if not value:
        return directives
    for part in value.split(","):
        name, sep, argument = part.partition("=")
        name = name.strip().lower()
        if not name:
            continue
        directives[name] = argument.strip().strip('"') if sep else None
    return directives


class Headers:
    """Ordered, case-insensitive header collection."""

    __slots__ = ("_items",)

    def __init__(self, items: HeaderSource = None):
        self._items: List[Tuple[str, str]] = []
        if items is None:
            return
        if isinstance(items, Headers):
            self._items.extend(items._items)
        elif isinstance(items, dict):
            for name, value in items.items():
                self.add(name, value)
        else:
            for name, value in items:
                self.add(name, value)

    # -- mutation ---------------------------------------------------------

    def add(self, name: str, value) -> None:
        """Append a header, keeping any existing values of ``name``."""
        self._items.append((str(name), str(value)))

    def set(self, name: str, value) -> None:
        """Replace every value of ``name`` with a single one."""
        self.remove(name)
        self.add(name, value)

    def setdefault(self, name: str, value) -> None:
        """Add the header only if ``name`` is not present."""
        if name not in self:
            self.add(name, value)

    def remove(self, name: str) -> None:
        """Drop every value of ``name`` (no error if absent)."""
        lowered = name.lower()
        self._items = [
            (k, v) for k, v in self._items if k.lower() != lowered
        ]

    def extend(self, items: HeaderSource) -> None:
        for name, value in Headers(items).items():
            self.add(name, value)

    # -- lookup -------------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of ``name``, or ``default``."""
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        """Every value of ``name``, in insertion order."""
        lowered = name.lower()
        return [v for k, v in self._items if k.lower() == lowered]

    def get_int(self, name: str) -> Optional[int]:
        """First value of ``name`` parsed as an integer, else ``None``."""
        value = self.get(name)
        if value is None:
            return None
        try:
            return int(value.strip())
        except ValueError:
            return None

    def contains_token(self, name: str, token: str) -> bool:
        """True if ``token`` appears in the comma-list value(s) of ``name``.

        Used for ``Connection: keep-alive, ...`` style headers.
        """
        token = token.lower()
        for value in self.get_all(name):
            for part in value.split(","):
                if part.strip().lower() == token:
                    return True
        return False

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        ours = [(k.lower(), v) for k, v in self._items]
        theirs = [(k.lower(), v) for k, v in other._items]
        return ours == theirs

    def copy(self) -> "Headers":
        return Headers(self)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
