"""HTTP-date (IMF-fixdate) formatting and parsing."""

from __future__ import annotations

import calendar
from email.utils import formatdate, parsedate_tz
from typing import Optional

__all__ = ["format_http_date", "parse_http_date"]


def format_http_date(timestamp: float) -> str:
    """Format a POSIX timestamp as an IMF-fixdate string (GMT)."""
    return formatdate(timestamp, usegmt=True)


def parse_http_date(value: str) -> Optional[float]:
    """Parse an HTTP date into a POSIX timestamp; ``None`` on failure."""
    parsed = parsedate_tz(value)
    if parsed is None:
        return None
    tz_offset = parsed[9] or 0
    return calendar.timegm(parsed[:9]) - tz_offset
