"""HTTP byte-range grammar (RFC 7233).

This module implements the multi-range machinery at the heart of the
paper's Section 2.3: davix packs many scattered fragment reads into one
``Range: bytes=a-b,c-d,...`` header, and the server answers ``206`` with
a ``multipart/byteranges`` body.

Conventions: a :class:`RangeSpec` mirrors the wire grammar (inclusive
first/last positions, either possibly open); a *resolved* range is an
``(offset, length)`` pair against a known resource size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import HttpProtocolError

__all__ = [
    "RangeSpec",
    "parse_range_header",
    "format_range_header",
    "resolve_ranges",
    "parse_content_range",
    "format_content_range",
]


@dataclass(frozen=True)
class RangeSpec:
    """One range-spec from a ``Range`` header.

    ``first`` and ``last`` are inclusive byte positions. A suffix range
    ("last N bytes") has ``first=None`` and ``last=N``; an open range
    ("from X to end") has ``last=None``.
    """

    first: Optional[int]
    last: Optional[int]

    def __post_init__(self):
        if self.first is None and self.last is None:
            raise HttpProtocolError("range-spec needs at least one bound")
        if self.first is not None and self.first < 0:
            raise HttpProtocolError("range first-byte must be >= 0")
        if self.last is not None and self.last < 0:
            raise HttpProtocolError("range last-byte must be >= 0")
        if (
            self.first is not None
            and self.last is not None
            and self.last < self.first
        ):
            raise HttpProtocolError(
                f"descending range {self.first}-{self.last}"
            )

    @classmethod
    def from_offset_length(cls, offset: int, length: int) -> "RangeSpec":
        if length <= 0:
            raise ValueError("length must be > 0")
        return cls(first=offset, last=offset + length - 1)

    def to_header_fragment(self) -> str:
        if self.first is None:
            return f"-{self.last}"
        if self.last is None:
            return f"{self.first}-"
        return f"{self.first}-{self.last}"

    def resolve(self, size: int) -> Optional[Tuple[int, int]]:
        """Resolve against a resource of ``size`` bytes.

        Returns ``(offset, length)`` or ``None`` when unsatisfiable.
        """
        if self.first is None:
            # suffix: last N bytes
            if self.last == 0:
                return None
            length = min(self.last, size)
            if length == 0:
                return None
            return (size - length, length)
        if self.first >= size:
            return None
        last = size - 1 if self.last is None else min(self.last, size - 1)
        return (self.first, last - self.first + 1)


def parse_range_header(value: str) -> List[RangeSpec]:
    """Parse a ``Range`` header value into specs.

    Raises :class:`HttpProtocolError` on malformed input (the server
    maps this to ignoring the header, per RFC 7233 §3.1).
    """
    value = value.strip()
    if not value.lower().startswith("bytes="):
        raise HttpProtocolError(f"unsupported range unit in {value!r}")
    specs: List[RangeSpec] = []
    for part in value[len("bytes=") :].split(","):
        part = part.strip()
        if not part:
            raise HttpProtocolError("empty range-spec")
        first_s, sep, last_s = part.partition("-")
        if not sep:
            raise HttpProtocolError(f"range-spec without '-': {part!r}")
        try:
            first = int(first_s) if first_s else None
            last = int(last_s) if last_s else None
        except ValueError:
            raise HttpProtocolError(f"non-numeric range-spec {part!r}")
        specs.append(RangeSpec(first=first, last=last))
    if not specs:
        raise HttpProtocolError("Range header with no range-spec")
    return specs


def format_range_header(specs: Sequence[RangeSpec]) -> str:
    """Build a ``Range`` header value from specs."""
    if not specs:
        raise ValueError("cannot format an empty range list")
    return "bytes=" + ",".join(spec.to_header_fragment() for spec in specs)


def resolve_ranges(
    specs: Sequence[RangeSpec], size: int
) -> List[Tuple[int, int]]:
    """Resolve specs against ``size``; drops unsatisfiable members.

    An empty result means *no* spec was satisfiable — the server answers
    416 in that case.
    """
    resolved = []
    for spec in specs:
        pair = spec.resolve(size)
        if pair is not None:
            resolved.append(pair)
    return resolved


def format_content_range(offset: int, length: int, total: int) -> str:
    """``Content-Range`` value for a satisfied range."""
    return f"bytes {offset}-{offset + length - 1}/{total}"


def parse_content_range(value: str) -> Tuple[int, int, Optional[int]]:
    """Parse ``Content-Range: bytes a-b/total``.

    Returns ``(offset, length, total)`` with ``total=None`` for ``/*``.
    """
    value = value.strip()
    if not value.startswith("bytes "):
        raise HttpProtocolError(f"bad Content-Range unit: {value!r}")
    span, sep, total_s = value[len("bytes ") :].partition("/")
    if not sep:
        raise HttpProtocolError(f"Content-Range without total: {value!r}")
    first_s, sep, last_s = span.partition("-")
    if not sep:
        raise HttpProtocolError(f"bad Content-Range span: {value!r}")
    try:
        first = int(first_s)
        last = int(last_s)
        total = None if total_s.strip() == "*" else int(total_s)
    except ValueError:
        raise HttpProtocolError(f"non-numeric Content-Range: {value!r}")
    if last < first:
        raise HttpProtocolError(f"descending Content-Range: {value!r}")
    return (first, last - first + 1, total)
