"""Minimal URL handling for HTTP resources.

Wraps stdlib parsing in a small value type with the operations the
client needs: default ports, origin comparison (for connection-pool
keying), percent-safe path joining, and redirect resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from urllib.parse import quote, unquote, urljoin, urlsplit

from repro.errors import HttpProtocolError

__all__ = ["Url", "DEFAULT_PORTS"]

DEFAULT_PORTS = {"http": 80, "https": 443, "dav": 80, "davs": 443}


@dataclass(frozen=True)
class Url:
    """A parsed absolute URL.

    ``dav``/``davs`` schemes (used by davix tooling) alias http/https.
    """

    scheme: str
    host: str
    port: int
    path: str
    query: str = ""

    @classmethod
    def parse(cls, raw: str) -> "Url":
        parts = urlsplit(raw)
        scheme = (parts.scheme or "http").lower()
        if scheme not in DEFAULT_PORTS:
            raise HttpProtocolError(f"unsupported scheme {scheme!r} in {raw!r}")
        if not parts.hostname:
            raise HttpProtocolError(f"URL without host: {raw!r}")
        port = parts.port or DEFAULT_PORTS[scheme]
        path = parts.path or "/"
        return cls(
            scheme=scheme,
            host=parts.hostname,
            port=port,
            path=path,
            query=parts.query,
        )

    # -- derived -------------------------------------------------------------

    @property
    def origin(self) -> tuple:
        """(scheme, host, port) — the connection-pool key."""
        return (self.scheme, self.host, self.port)

    @property
    def netloc(self) -> str:
        if self.port == DEFAULT_PORTS[self.scheme]:
            return self.host
        return f"{self.host}:{self.port}"

    @property
    def target(self) -> str:
        """The request-target to place on the request line."""
        path = self.path or "/"
        return f"{path}?{self.query}" if self.query else path

    @property
    def decoded_path(self) -> str:
        """The path with percent-encoding removed."""
        return unquote(self.path)

    def resolve(self, location: str) -> "Url":
        """Resolve a (possibly relative) redirect target against self."""
        return Url.parse(urljoin(str(self), location))

    def with_path(self, path: str, encode: bool = True) -> "Url":
        """Return a copy pointing at ``path`` (query dropped)."""
        if encode:
            path = quote(path, safe="/")
        if not path.startswith("/"):
            path = "/" + path
        return replace(self, path=path, query="")

    def sibling(self, name: str) -> "Url":
        """URL of ``name`` in the same collection as this resource."""
        base = self.path.rsplit("/", 1)[0]
        return self.with_path(f"{base}/{name}", encode=True)

    def __str__(self) -> str:
        url = f"{self.scheme}://{self.netloc}{self.path or '/'}"
        return f"{url}?{self.query}" if self.query else url
